//! Per-shard adaptive zonemaps: shard-local metadata over a
//! [`ShardedColumn`].
//!
//! A [`ShardedZonemap`] holds one independent [`AdaptiveZonemap`] (each
//! with its own SoA `PrunePlane`) per shard of a [`ShardedColumn`].
//! Every lane runs the full prune → scan →
//! observe protocol **in shard-local row coordinates** with its own query
//! clock, maintenance cadence, and revival backoff, so adaptation in one
//! shard never renumbers zones — or forces republication — in another.
//!
//! The soundness argument is shard-local: lane `s` only ever describes the
//! rows of shard `s`'s column version, and the partition is contiguous and
//! exhaustive, so the union of per-lane prune outcomes is a sound superset
//! of the qualifying rows of the whole column. Global row ids are
//! recovered by offsetting lane-local ranges with the shard's `start`.

use crate::adaptive::config::AdaptiveConfig;
use crate::adaptive::reorg::ReorgStats;
use crate::adaptive::tier::TierStats;
use crate::adaptive::zonemap::AdaptiveZonemap;
use crate::cost::CostModel;
use crate::index::SkippingIndex;
use ads_storage::{DataValue, RowRange, ShardedColumn};

/// One adaptive zonemap lane per shard of a [`ShardedColumn`].
#[derive(Debug, Clone)]
pub struct ShardedZonemap<T: DataValue> {
    lanes: Vec<AdaptiveZonemap<T>>,
    /// Global row id of each lane's first row (mirrors the column layout).
    starts: Vec<usize>,
}

impl<T: DataValue> ShardedZonemap<T> {
    /// One lane per entry of `shard_lens`, each starting unbuilt. All
    /// lanes share one config (and hence one policy); their clocks and
    /// structures evolve independently from there.
    ///
    /// # Panics
    /// Panics when `shard_lens` is empty or `config` is inconsistent.
    pub fn new(shard_lens: &[usize], config: AdaptiveConfig) -> Self {
        Self::with_cost(shard_lens, config, CostModel::default())
    }

    /// As [`ShardedZonemap::new`] with an explicit cost model.
    pub fn with_cost(shard_lens: &[usize], config: AdaptiveConfig, cost: CostModel) -> Self {
        assert!(!shard_lens.is_empty(), "need at least one shard");
        let mut lanes = Vec::with_capacity(shard_lens.len());
        let mut starts = Vec::with_capacity(shard_lens.len());
        let mut at = 0usize;
        for &len in shard_lens {
            starts.push(at);
            lanes.push(AdaptiveZonemap::with_cost(len, config.clone(), cost));
            at += len;
        }
        ShardedZonemap { lanes, starts }
    }

    /// Lanes matching `column`'s shard layout exactly.
    pub fn for_column(column: &ShardedColumn<T>, config: AdaptiveConfig) -> Self {
        Self::new(&column.shard_lens(), config)
    }

    /// Number of lanes (= shards).
    pub fn num_shards(&self) -> usize {
        self.lanes.len()
    }

    /// Total rows covered across all lanes.
    pub fn len(&self) -> usize {
        // invariant: constructors reject empty lane sets (both lines).
        self.starts.last().expect("at least one lane")
            + self.lanes.last().expect("at least one lane").len()
    }

    /// True when covering zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lane `s` (shard-local coordinates).
    pub fn lane(&self, s: usize) -> &AdaptiveZonemap<T> {
        &self.lanes[s]
    }

    /// Mutable lane `s` — the shard-local feedback entry point
    /// ([`AdaptiveZonemap::apply_feedback`] etc.).
    pub fn lane_mut(&mut self, s: usize) -> &mut AdaptiveZonemap<T> {
        &mut self.lanes[s]
    }

    /// All lanes, in shard order.
    pub fn lanes(&self) -> &[AdaptiveZonemap<T>] {
        &self.lanes
    }

    /// Global row id of lane `s`'s first row.
    pub fn start(&self, s: usize) -> usize {
        self.starts[s]
    }

    /// Replaces lane `s` wholesale and re-derives every lane's start from
    /// `shard_lens` — the compaction path: shard `s`'s rows were densely
    /// repacked (so its metadata is rebuilt from scratch against the new
    /// layout) and every downstream shard's first global row shifted by
    /// the rows reclaimed.
    ///
    /// # Panics
    /// Panics when `shard_lens` does not have one entry per lane or
    /// `shard_lens[s]` differs from the replacement lane's length.
    pub fn replace_lane(&mut self, s: usize, lane: AdaptiveZonemap<T>, shard_lens: &[usize]) {
        assert_eq!(
            shard_lens.len(),
            self.lanes.len(),
            "lane count is fixed for the zonemap's lifetime"
        );
        assert_eq!(
            shard_lens[s],
            lane.len(),
            "replacement lane must cover exactly its shard's rows"
        );
        self.lanes[s] = lane;
        let mut at = 0usize;
        for (start, &len) in self.starts.iter_mut().zip(shard_lens) {
            *start = at;
            at += len;
        }
    }

    /// Routes an append to the tail lane, mirroring
    /// [`ShardedColumn::append`]'s tail routing. `tail_base` is the tail
    /// shard's column slice *after* the append.
    pub fn on_append_tail(&mut self, appended: &[T], tail_base: &[T]) {
        self.lanes
            .last_mut()
            // invariant: constructors reject empty lane sets.
            .expect("at least one lane")
            .on_append(appended, tail_base);
    }

    /// Runs the pre-publication revival poll on every lane; returns `true`
    /// when any lane revived zones.
    pub fn poll_revival(&mut self) -> bool {
        let mut any = false;
        for lane in &mut self.lanes {
            any |= lane.poll_revival();
        }
        any
    }

    /// Per-lane mutation epochs, in shard order; see
    /// [`AdaptiveZonemap::mutation_epoch`]. Publication layers diff this
    /// vector against the epochs they last published to find the shards
    /// that actually need a fresh clone.
    pub fn mutation_epochs(&self) -> Vec<u64> {
        self.lanes
            .iter()
            .map(AdaptiveZonemap::mutation_epoch)
            .collect()
    }

    /// Total zone entries across all lanes.
    pub fn num_zones(&self) -> usize {
        self.lanes.iter().map(AdaptiveZonemap::num_zones).sum()
    }

    /// Lifetime reorganization counters summed across all lanes.
    pub fn reorg_stats(&self) -> ReorgStats {
        let mut total = ReorgStats::default();
        for lane in &self.lanes {
            total.merge(&lane.reorg_stats());
        }
        total
    }

    /// Zones currently in the reorganized layout, across all lanes.
    pub fn zones_reorganized(&self) -> usize {
        self.lanes
            .iter()
            .map(AdaptiveZonemap::zones_reorganized)
            .sum()
    }

    /// Aggregated lifetime tier counters across all lanes.
    pub fn tier_stats(&self) -> TierStats {
        let mut total = TierStats::default();
        for lane in &self.lanes {
            total.merge(&lane.tier_stats());
        }
        total
    }

    /// Zones currently carrying a metadata tier, across all lanes.
    pub fn zones_tiered(&self) -> usize {
        self.lanes.iter().map(AdaptiveZonemap::zones_tiered).sum()
    }

    /// Metadata bytes across all lanes.
    pub fn metadata_bytes(&self) -> usize {
        self.lanes.iter().map(SkippingIndex::metadata_bytes).sum()
    }

    /// Global structural snapshot: each lane's
    /// [`AdaptiveZonemap::zone_snapshot`] with ranges offset to global row
    /// ids, concatenated in shard order.
    pub fn zone_snapshot(&self) -> Vec<(RowRange, &'static str, f64)> {
        let mut out = Vec::with_capacity(self.num_zones());
        for (lane, &start) in self.lanes.iter().zip(&self.starts) {
            out.extend(lane.zone_snapshot().into_iter().map(|(r, label, rate)| {
                (RowRange::new(r.start + start, r.end + start), label, rate)
            }));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::{RangeObservation, ScanObservation};
    use crate::predicate::RangePredicate;

    fn cfg() -> AdaptiveConfig {
        AdaptiveConfig {
            target_zone_rows: 64,
            min_zone_rows: 8,
            max_zone_rows: 512,
            ..AdaptiveConfig::default()
        }
    }

    /// Inline-protocol one query against one lane: prune, scan `data`
    /// (shard-local), observe.
    fn run_query(lane: &mut AdaptiveZonemap<i64>, data: &[i64], lo: i64, hi: i64) {
        let pred = RangePredicate::between(lo, hi);
        let outcome = SkippingIndex::prune(lane, &pred);
        let mut ranges = Vec::new();
        for unit in outcome.units() {
            let (q, min, max) =
                ads_storage::scan::count_in_range_with_minmax(&data[unit.start..unit.end], lo, hi);
            ranges.push(RangeObservation::new(*unit, q, min, max));
        }
        lane.observe(&ScanObservation {
            predicate: pred,
            ranges,
        });
    }

    #[test]
    fn lanes_are_independent() {
        let data: Vec<i64> = (0..1000).collect();
        let mut zm = ShardedZonemap::new(&[500, 500], cfg());
        let before = zm.mutation_epochs();

        // Query only shard 0's lane; shard 1's lane must not move.
        run_query(zm.lane_mut(0), &data[..500], 10, 50);
        let after = zm.mutation_epochs();
        assert!(after[0] > before[0], "lane 0 built metadata");
        assert_eq!(after[1], before[1], "lane 1 untouched");
        assert_eq!(zm.lane(1).index_stats().queries, 0);
    }

    #[test]
    fn zone_snapshot_offsets_to_global_rows() {
        let zm: ShardedZonemap<i64> = ShardedZonemap::new(&[100, 60, 0], cfg());
        let snap = zm.zone_snapshot();
        // Lane 0: [0,64) [64,100); lane 1: [100,164); lane 2 empty.
        let ranges: Vec<(usize, usize)> = snap.iter().map(|(r, _, _)| (r.start, r.end)).collect();
        assert_eq!(ranges, vec![(0, 64), (64, 100), (100, 160)]);
        assert!(snap.iter().all(|(_, label, _)| *label == "unbuilt"));
        assert_eq!(zm.len(), 160);
        assert_eq!(zm.start(2), 160);
    }

    #[test]
    fn append_routes_to_tail_lane() {
        let mut zm: ShardedZonemap<i64> = ShardedZonemap::new(&[100, 100], cfg());
        let tail_after: Vec<i64> = (0..130).collect();
        zm.on_append_tail(&tail_after[100..], &tail_after);
        assert_eq!(zm.lane(0).len(), 100);
        assert_eq!(zm.lane(1).len(), 130);
        assert_eq!(zm.len(), 230);
    }

    #[test]
    fn replace_lane_swaps_metadata_and_shifts_downstream_starts() {
        let mut zm: ShardedZonemap<i64> = ShardedZonemap::new(&[100, 100, 100], cfg());
        assert_eq!((zm.start(1), zm.start(2)), (100, 200));
        // Compaction shrank shard 1 from 100 to 60 rows.
        zm.replace_lane(1, AdaptiveZonemap::new(60, cfg()), &[100, 60, 100]);
        assert_eq!(zm.lane(1).len(), 60);
        assert_eq!((zm.start(0), zm.start(1), zm.start(2)), (0, 100, 160));
        assert_eq!(zm.len(), 260);
    }

    #[test]
    #[should_panic(expected = "must cover exactly")]
    fn replace_lane_rejects_mismatched_length() {
        let mut zm: ShardedZonemap<i64> = ShardedZonemap::new(&[100, 100], cfg());
        zm.replace_lane(0, AdaptiveZonemap::new(50, cfg()), &[100, 100]);
    }

    #[test]
    fn epoch_ignores_pure_prunes_but_counts_builds() {
        let data: Vec<i64> = (0..256).collect();
        let mut zm = ShardedZonemap::new(&[256], cfg());
        run_query(zm.lane_mut(0), &data, 0, 10);
        let built = zm.mutation_epochs()[0];
        assert!(built > 0, "building zones must bump the epoch");

        // Re-running the same query skips everything except the matching
        // zone and re-tightens already-exact bounds: prune-side stat drift
        // alone must not bump the epoch once no zone changes state...
        let pred = RangePredicate::between(300, 400); // matches nothing
        for _ in 0..3 {
            let out = zm.lane_mut(0).prune_shared(&pred);
            assert!(out.units().is_empty() || !out.units().is_empty()); // read-only
        }
        assert_eq!(
            zm.mutation_epochs()[0],
            built,
            "prune_shared mutated the epoch"
        );
    }
}

//! Behavioural tests for the adaptive zonemap, driven through the same
//! prune → scan → observe loop the engine runs.

use crate::adaptive::{AdaptiveConfig, AdaptiveZonemap};
use crate::index::SkippingIndex;
use crate::outcome::{RangeObservation, ScanObservation};
use crate::predicate::RangePredicate;
use ads_storage::scan;

/// Executes one query end-to-end against `data`, returning the exact
/// qualifying count and feeding the observation back into the index.
fn run_query(
    zm: &mut AdaptiveZonemap<i64>,
    data: &[i64],
    pred: RangePredicate<i64>,
) -> (usize, usize) {
    let out = zm.prune(&pred);
    let mut count = out.rows_full_match();
    let mut ranges = Vec::with_capacity(out.units().len());
    for (i, unit) in out.units().iter().enumerate() {
        let slice = &data[unit.start..unit.end];
        let obs = if let Some(req) = out.mask_request(i) {
            let (q, min, max, mask) = scan::count_in_range_with_minmax_and_mask(
                slice, pred.lo, pred.hi, req.lo_f, req.hi_f,
            );
            let mut o = RangeObservation::new(*unit, q, min, max);
            o.mask = Some(mask);
            o
        } else {
            let (q, min, max) = scan::count_in_range_with_minmax(slice, pred.lo, pred.hi);
            RangeObservation::new(*unit, q, min, max)
        };
        count += obs.qualifying;
        ranges.push(obs);
    }
    let scanned = out.rows_to_scan();
    zm.observe(&ScanObservation {
        predicate: pred,
        ranges,
    });
    zm.assert_invariants();
    (count, scanned)
}

fn small_config() -> AdaptiveConfig {
    AdaptiveConfig {
        target_zone_rows: 128,
        min_zone_rows: 16,
        max_zone_rows: 1024,
        maintenance_every: 2,
        revival_base_queries: Some(32),
        ..AdaptiveConfig::default()
    }
}

fn oracle(data: &[i64], pred: RangePredicate<i64>) -> usize {
    data.iter().filter(|&&v| pred.matches(v)).count()
}

#[test]
fn starts_fully_unbuilt_and_scans_everything_once() {
    let data: Vec<i64> = (0..1000).collect();
    let mut zm = AdaptiveZonemap::new(data.len(), small_config());
    let (unbuilt, built, dead) = zm.state_counts();
    assert_eq!((built, dead), (0, 0));
    assert!(unbuilt > 0);

    let pred = RangePredicate::between(100, 199);
    let (count, scanned) = run_query(&mut zm, &data, pred);
    assert_eq!(count, 100);
    assert_eq!(scanned, 1000, "first query pays the full scan");

    // Metadata materialised as a by-product.
    let (unbuilt, built, _) = zm.state_counts();
    assert_eq!(unbuilt, 0);
    assert!(built > 0);
    assert_eq!(zm.trace().totals().built as usize, built);
}

#[test]
fn second_query_skips_on_sorted_data() {
    let data: Vec<i64> = (0..10_000).collect();
    let mut zm = AdaptiveZonemap::new(data.len(), small_config());
    let pred = RangePredicate::between(2000, 2100);
    run_query(&mut zm, &data, pred);
    let (count, scanned) = run_query(&mut zm, &data, pred);
    assert_eq!(count, 101);
    assert!(
        scanned <= 3 * 128,
        "sorted data should skip almost everything, scanned {scanned}"
    );
}

#[test]
fn answers_always_match_oracle() {
    let data: Vec<i64> = (0..5000).map(|i| (i * 2654435761i64) % 1000).collect();
    let mut zm = AdaptiveZonemap::new(data.len(), small_config());
    for q in 0..60 {
        let lo = (q * 37) % 900;
        let pred = RangePredicate::between(lo, lo + 50);
        let (count, _) = run_query(&mut zm, &data, pred);
        assert_eq!(count, oracle(&data, pred), "query {q}");
    }
}

#[test]
fn random_data_converges_to_deactivated_metadata() {
    // Adversarial: every zone spans the whole domain, no (min,max) skip
    // ever fires. Masks are disabled here to test the merge/deactivate
    // ladder in isolation — with masks on, narrow predicates do land in
    // empty bins often enough that the metadata stops being useless (see
    // `masks_keep_paying_on_uniform_data_with_narrow_predicates`).
    let data: Vec<i64> = (0..20_000)
        .map(|i| (i * 2654435761i64).rem_euclid(1_000_000))
        .collect();
    let cfg = AdaptiveConfig {
        enable_mask: false,
        ..small_config()
    };
    let mut zm = AdaptiveZonemap::new(data.len(), cfg);
    let initial_zones = zm.num_zones();
    for q in 0..200 {
        let lo = (q * 9973) % 900_000;
        let pred = RangePredicate::between(lo, lo + 10_000);
        run_query(&mut zm, &data, pred);
    }
    let (_, _, dead) = zm.state_counts();
    assert!(dead > 0, "useless metadata should be deactivated");
    assert!(
        zm.num_zones() < initial_zones / 4,
        "merging + dead coalescing should shrink the entry count: {} -> {}",
        initial_zones,
        zm.num_zones()
    );
    assert!(zm.trace().totals().merged > 0);
    assert!(zm.trace().totals().deactivated > 0);
}

#[test]
fn clustered_data_splits_hot_boundary_zones() {
    // Two clusters meet mid-zone; queries on the boundary value range keep
    // scanning the straddling zone for tiny yield until it splits.
    let mut data = vec![100i64; 4096];
    data.extend(vec![900i64; 4096]);
    let cfg = AdaptiveConfig {
        target_zone_rows: 1024,
        min_zone_rows: 32,
        max_zone_rows: 8192,
        split_after_wasted: 2,
        maintenance_every: 1000, // isolate splitting from merging
        ..AdaptiveConfig::default()
    };
    let mut zm = AdaptiveZonemap::new(data.len(), cfg);
    let pred = RangePredicate::between(400, 600); // matches nothing
    for _ in 0..12 {
        let (count, _) = run_query(&mut zm, &data, pred);
        assert_eq!(count, 0);
    }
    // All zones are pure (single cluster) so after building, every zone is
    // skippable for this predicate; no splits should have been needed.
    assert_eq!(zm.trace().totals().split, 0);

    // Now a predicate overlapping the low cluster's value but matching few
    // rows in zones: zones are constant-valued, so scans are either full
    // matches or skips; craft mixed-value zones instead.
    let mut mixed: Vec<i64> = Vec::new();
    for i in 0..8192 {
        // Zone-sized stripes of slowly increasing values with occasional
        // outliers that widen zone ranges.
        mixed.push(if i % 512 == 0 { 5000 } else { (i / 64) as i64 });
    }
    let cfg2 = AdaptiveConfig {
        target_zone_rows: 1024,
        min_zone_rows: 32,
        max_zone_rows: 8192,
        split_after_wasted: 2,
        maintenance_every: 1000,
        ..AdaptiveConfig::default()
    };
    let mut zm2 = AdaptiveZonemap::new(mixed.len(), cfg2);
    let outlier_pred = RangePredicate::between(4900, 5100);
    for _ in 0..10 {
        run_query(&mut zm2, &mixed, outlier_pred);
    }
    assert!(
        zm2.trace().totals().split > 0,
        "low-yield scans should trigger refinement"
    );
}

#[test]
fn split_reduces_scanned_rows_for_outlier_queries() {
    // One outlier per 1024-row zone makes whole-zone metadata useless for
    // outlier-range queries; after splits, sub-zones without outliers skip.
    let n = 16_384usize;
    let data: Vec<i64> = (0..n)
        .map(|i| {
            if i % 1024 == 512 {
                10_000
            } else {
                (i % 64) as i64
            }
        })
        .collect();
    let cfg = AdaptiveConfig {
        target_zone_rows: 1024,
        min_zone_rows: 64,
        max_zone_rows: 8192,
        split_after_wasted: 1,
        maintenance_every: 1_000_000,
        ..AdaptiveConfig::default()
    };
    let mut zm = AdaptiveZonemap::new(n, cfg);
    let pred = RangePredicate::between(9_000, 11_000);
    let (_, first_scan) = run_query(&mut zm, &data, pred);
    assert_eq!(first_scan, n);
    let mut last_scan = usize::MAX;
    for _ in 0..20 {
        let (count, scanned) = run_query(&mut zm, &data, pred);
        assert_eq!(count, n / 1024);
        last_scan = scanned;
    }
    assert!(
        last_scan < n / 4,
        "refinement should localise outliers, still scanning {last_scan} of {n}"
    );
}

#[test]
fn revival_after_backoff_lets_shifted_workload_reclaim_metadata() {
    // Phase 1: values in the first half are random (metadata dies there);
    // second half sorted. Queries hit the random half's domain.
    let n = 8192usize;
    let data: Vec<i64> = (0..n)
        .map(|i| {
            if i < n / 2 {
                ((i as i64) * 2654435761).rem_euclid(1000)
            } else {
                (i as i64) - (n as i64) / 2 + 2000 // sorted, far domain
            }
        })
        .collect();
    let cfg = AdaptiveConfig {
        target_zone_rows: 256,
        min_zone_rows: 32,
        max_zone_rows: 2048,
        maintenance_every: 2,
        merge_after_probes: 2,
        deactivate_after_probes: 4,
        revival_base_queries: Some(16),
        ..AdaptiveConfig::default()
    };
    let mut zm = AdaptiveZonemap::new(n, cfg);
    for q in 0..80 {
        let lo = (q * 31) % 900;
        run_query(&mut zm, &data, RangePredicate::between(lo, lo + 50));
    }
    let deact = zm.trace().totals().deactivated;
    assert!(deact > 0, "random half should deactivate");
    // Keep querying long past the backoff: revivals must occur, and since
    // the data is still random there, the region should die again.
    for q in 0..200 {
        let lo = (q * 17) % 900;
        run_query(&mut zm, &data, RangePredicate::between(lo, lo + 50));
    }
    assert!(zm.trace().totals().revived > 0, "backoff should revive");
    assert!(
        zm.trace().totals().deactivated > deact,
        "still-random region should re-deactivate after revival"
    );
}

#[test]
fn append_adds_unbuilt_zones_and_stays_sound() {
    let mut data: Vec<i64> = (0..1000).collect();
    let mut zm = AdaptiveZonemap::new(data.len(), small_config());
    run_query(&mut zm, &data, RangePredicate::between(0, 500));

    // Trickle appends, querying between them.
    for batch in 0..10 {
        let newvals: Vec<i64> = (0..77).map(|i| 1000 + batch * 77 + i).collect();
        data.extend_from_slice(&newvals);
        zm.on_append(&newvals, &data);
        let pred = RangePredicate::between(900, 1200);
        let (count, _) = run_query(&mut zm, &data, pred);
        assert_eq!(count, oracle(&data, pred), "batch {batch}");
    }
    assert_eq!(zm.len(), data.len());
}

#[test]
fn append_extends_trailing_unbuilt_zone() {
    let cfg = small_config();
    let target = cfg.target_zone_rows;
    let mut zm = AdaptiveZonemap::<i64>::new(100, cfg);
    assert_eq!(zm.num_zones(), 1);
    let base: Vec<i64> = (0..150).collect();
    zm.on_append(&base[100..], &base);
    // 150 <= target(128)? 150 > 128: first zone extended to 128, second zone opened.
    assert_eq!(target, 128);
    assert_eq!(zm.num_zones(), 2);
    zm.assert_invariants();
}

#[test]
fn full_match_zones_are_answered_without_scanning() {
    let data: Vec<i64> = (0..4096).collect();
    let mut zm = AdaptiveZonemap::new(data.len(), small_config());
    let pred = RangePredicate::between(0, 4095);
    run_query(&mut zm, &data, pred); // builds
    let out = zm.prune(&pred);
    assert_eq!(out.rows_full_match(), 4096);
    assert_eq!(out.rows_to_scan(), 0);
    zm.observe(&ScanObservation::empty(pred));
}

#[test]
fn name_reflects_enabled_components() {
    let zm = AdaptiveZonemap::<i64>::new(10, AdaptiveConfig::default());
    assert!(zm.name().contains("smd"));
    let lazy = AdaptiveZonemap::<i64>::new(10, AdaptiveConfig::lazy_only());
    assert!(lazy.name().contains("lazy"));
}

#[test]
fn lazy_only_never_reorganises() {
    let data: Vec<i64> = (0..8192).map(|i| (i * 37) % 100).collect();
    let mut zm = AdaptiveZonemap::new(
        data.len(),
        AdaptiveConfig {
            target_zone_rows: 512,
            ..AdaptiveConfig::lazy_only()
        },
    );
    for q in 0..50 {
        run_query(&mut zm, &data, RangePredicate::between(q % 90, q % 90 + 5));
    }
    let totals = zm.trace().totals();
    assert_eq!(totals.split, 0);
    assert_eq!(totals.merged, 0);
    assert_eq!(totals.deactivated, 0);
    assert!(totals.built > 0);
}

#[test]
fn empty_column() {
    let mut zm = AdaptiveZonemap::<i64>::new(0, small_config());
    assert!(zm.is_empty());
    let out = zm.prune(&RangePredicate::all());
    assert_eq!(out.rows_to_scan(), 0);
    assert_eq!(out.zones_probed, 0);
}

#[test]
fn metadata_bytes_shrinks_after_convergence_on_random_data() {
    let data: Vec<i64> = (0..32_768)
        .map(|i| (i * 2654435761i64).rem_euclid(1_000_000))
        .collect();
    let mut zm = AdaptiveZonemap::new(data.len(), small_config());
    for _ in 0..5 {
        run_query(&mut zm, &data, RangePredicate::between(0, 500_000));
    }
    let before = zm.num_zones();
    for q in 0..300 {
        let lo = (q * 7919) % 500_000;
        run_query(&mut zm, &data, RangePredicate::between(lo, lo + 100_000));
    }
    assert!(zm.num_zones() < before);
}

#[test]
fn conservative_bounds_after_split_never_lose_rows() {
    // Force splits, then check soundness against the oracle for many
    // predicates while halves still carry inherited (inexact) bounds.
    let data: Vec<i64> = (0..4096)
        .map(|i| {
            if i % 512 == 100 {
                9999
            } else {
                (i % 32) as i64
            }
        })
        .collect();
    let cfg = AdaptiveConfig {
        target_zone_rows: 512,
        min_zone_rows: 32,
        split_after_wasted: 1,
        maintenance_every: 1_000_000,
        ..AdaptiveConfig::default()
    };
    let mut zm = AdaptiveZonemap::new(data.len(), cfg);
    for q in 0..40 {
        let pred = if q % 2 == 0 {
            RangePredicate::between(9000, 10_000)
        } else {
            RangePredicate::between(q % 30, q % 30 + 3)
        };
        let (count, _) = run_query(&mut zm, &data, pred);
        assert_eq!(count, oracle(&data, pred), "query {q}");
    }
    // Splits definitely happened under this config.
    assert!(zm.trace().totals().split > 0);
}

#[test]
fn state_counts_sum_to_zone_count() {
    let data: Vec<i64> = (0..2048).collect();
    let mut zm = AdaptiveZonemap::new(data.len(), small_config());
    run_query(&mut zm, &data, RangePredicate::between(0, 100));
    let (u, b, d) = zm.state_counts();
    assert_eq!(u + b + d, zm.num_zones());
    let snap = zm.zone_snapshot();
    assert_eq!(snap.len(), zm.num_zones());
}

#[test]
fn zone_masks_rescue_outlier_pinned_zones() {
    // One huge outlier per zone pins every zone's (min, max) wide open;
    // zones cannot split (at the floor), so the mask is the only way to
    // skip mid-range queries that match nothing.
    let n = 8192usize;
    let zone = 256usize;
    let data: Vec<i64> = (0..n)
        .map(|i| {
            if i % zone == 13 {
                10_000
            } else {
                (i % 16) as i64
            }
        })
        .collect();
    let cfg = AdaptiveConfig {
        target_zone_rows: zone,
        min_zone_rows: zone, // splitting blocked: masks must carry the day
        max_zone_rows: 4096,
        split_after_wasted: 2,
        maintenance_every: 1_000_000, // no merging in this test
        ..AdaptiveConfig::default()
    };
    let mut zm = AdaptiveZonemap::new(n, cfg);
    let pred = RangePredicate::between(5_000, 6_000); // between base and outlier
    let mut last_scan = usize::MAX;
    for _ in 0..8 {
        let (count, scanned) = run_query(&mut zm, &data, pred);
        assert_eq!(count, 0);
        last_scan = scanned;
    }
    assert!(zm.trace().totals().mask_built > 0, "masks should be earned");
    assert_eq!(last_scan, 0, "masked zones should skip entirely");

    // Soundness: queries that include the outlier value still find it.
    let hit = RangePredicate::between(9_000, 11_000);
    let (count, _) = run_query(&mut zm, &data, hit);
    assert_eq!(count, n / zone);
    // And base-range queries still count correctly.
    let base = RangePredicate::between(0, 15);
    let (count, _) = run_query(&mut zm, &data, base);
    assert_eq!(count, n - n / zone);
}

#[test]
fn no_mask_preset_never_builds_masks() {
    let n = 4096usize;
    let data: Vec<i64> = (0..n)
        .map(|i| {
            if i % 256 == 13 {
                10_000
            } else {
                (i % 16) as i64
            }
        })
        .collect();
    let cfg = AdaptiveConfig {
        target_zone_rows: 256,
        min_zone_rows: 256,
        max_zone_rows: 4096,
        maintenance_every: 1_000_000,
        ..AdaptiveConfig::no_mask()
    };
    let mut zm = AdaptiveZonemap::new(n, cfg);
    let pred = RangePredicate::between(5_000, 6_000);
    for _ in 0..8 {
        run_query(&mut zm, &data, pred);
    }
    assert_eq!(zm.trace().totals().mask_built, 0);
}

#[test]
fn masks_are_dropped_on_merge() {
    // Build masks, then enable-merge pressure: merged zones must not carry
    // stale masks (they describe a different row range).
    let n = 4096usize;
    let data: Vec<i64> = (0..n)
        .map(|i| {
            if i % 256 == 13 {
                10_000
            } else {
                (i % 16) as i64
            }
        })
        .collect();
    let cfg = AdaptiveConfig {
        target_zone_rows: 256,
        min_zone_rows: 256,
        max_zone_rows: 1024,
        split_after_wasted: 1,
        merge_after_probes: 4,
        merge_max_skip_rate: 1.0, // merge aggressively regardless of skips
        maintenance_every: 2,
        ..AdaptiveConfig::default()
    };
    let mut zm = AdaptiveZonemap::new(n, cfg);
    for q in 0..30 {
        let lo = 4000 + (q % 5) * 100;
        let (count, _) = run_query(&mut zm, &data, RangePredicate::between(lo, lo + 50));
        assert_eq!(count, 0);
        zm.assert_invariants();
    }
    // Whatever merging happened, answers must stay exact for outlier hits.
    let (count, _) = run_query(&mut zm, &data, RangePredicate::point(10_000));
    assert_eq!(count, n / 256);
}

#[test]
fn masks_keep_paying_on_uniform_data_with_narrow_predicates() {
    // With masks enabled, uniform data is no longer fully adversarial for
    // narrow predicates: a 1-2 bin predicate misses every value of a small
    // zone reasonably often, so mask skips fire and the metadata survives.
    let data: Vec<i64> = (0..20_000)
        .map(|i| (i * 2654435761i64).rem_euclid(1_000_000))
        .collect();
    let mut zm = AdaptiveZonemap::new(data.len(), small_config());
    let mut total_skips = 0usize;
    for q in 0..150 {
        let lo = (q * 9973) % 990_000;
        let pred = RangePredicate::between(lo, lo + 5_000);
        let out_skips = {
            let out = zm.prune(&pred);
            // Complete the protocol manually for this inspection loop.
            let mut ranges = Vec::new();
            for (i, unit) in out.units().iter().enumerate() {
                let slice = &data[unit.start..unit.end];
                let obs = if let Some(req) = out.mask_request(i) {
                    let (qc, min, max, mask) = scan::count_in_range_with_minmax_and_mask(
                        slice, pred.lo, pred.hi, req.lo_f, req.hi_f,
                    );
                    let mut o = RangeObservation::new(*unit, qc, min, max);
                    o.mask = Some(mask);
                    o
                } else {
                    let (qc, min, max) = scan::count_in_range_with_minmax(slice, pred.lo, pred.hi);
                    RangeObservation::new(*unit, qc, min, max)
                };
                ranges.push(obs);
            }
            zm.observe(&ScanObservation {
                predicate: pred,
                ranges,
            });
            out.zones_skipped
        };
        if q > 50 {
            total_skips += out_skips;
        }
    }
    assert!(zm.trace().totals().mask_built > 0);
    assert!(
        total_skips > 0,
        "mask skips should fire on narrow predicates over uniform data"
    );
}

#[test]
fn bloom_tier_skips_point_misses_inside_wide_bounds() {
    use crate::adaptive::TierMode;
    // Even values scattered over the domain: every zone's (min, max)
    // spans nearly everything, so bounds can never skip a point probe —
    // exactly the gap a value-set sketch closes.
    let data: Vec<i64> = (0..2048)
        .map(|i| ((i * 2654435761i64) % 1000) * 2)
        .collect();
    let cfg = AdaptiveConfig {
        tier_mode: TierMode::Bloom,
        tier_after_scans: 1,
        // Splits and merges reset scan counters (and clear tiers); pin the
        // layout so the test exercises the tier lifecycle, not zone
        // adaptation.
        enable_split: false,
        enable_merge: false,
        enable_deactivate: false,
        ..small_config()
    };
    let mut zm = AdaptiveZonemap::new(data.len(), cfg);
    for v in [0i64, 400, 800, 1200] {
        run_query(&mut zm, &data, RangePredicate::point(v));
    }
    assert!(zm.apply_tiers(&data).built > 0, "tiers should amortise");
    assert!(zm.zones_tiered() > 0);
    assert!(zm.trace().totals().tier_built > 0);

    // Odd values are absent everywhere; the sketches should exclude
    // most zones despite overlapping bounds.
    let mut scanned_total = 0;
    for q in 0..30i64 {
        let pred = RangePredicate::point(q * 66 + 1);
        let (count, scanned) = run_query(&mut zm, &data, pred);
        assert_eq!(count, 0, "absent value produced rows");
        scanned_total += scanned;
    }
    assert!(zm.tier_stats().tier_skips > 0, "no bloom skip ever fired");
    assert!(
        scanned_total < 30 * data.len() / 2,
        "blooms should cut scans, scanned {scanned_total}"
    );
    assert!(zm.name().contains('t'));
}

#[test]
fn imprint_tier_fragments_zone_into_line_runs() {
    use crate::adaptive::TierMode;
    // Sorted data: within one zone, a narrow predicate touches only a
    // couple of imprint lines; the rest of the zone's lines miss the
    // predicate's bins and are excluded without scanning.
    let data: Vec<i64> = (0..1024).collect();
    let cfg = AdaptiveConfig {
        tier_mode: TierMode::Imprint,
        tier_imprint_line_rows: 16,
        target_zone_rows: 512,
        max_zone_rows: 512,
        enable_merge: false,
        enable_deactivate: false,
        ..small_config()
    };
    let mut zm = AdaptiveZonemap::new(data.len(), cfg);
    let pred = RangePredicate::between(100, 119);
    for _ in 0..4 {
        run_query(&mut zm, &data, pred);
    }
    assert!(zm.apply_tiers(&data).built > 0);

    let (count, scanned) = run_query(&mut zm, &data, pred);
    assert_eq!(count, 20);
    assert!(
        scanned < 512,
        "imprints should exclude line runs inside the zone, scanned {scanned}"
    );
    assert!(zm.tier_stats().tier_rows_excluded > 0);
}

#[test]
fn adaptive_chooser_matches_tier_to_predicate_shape() {
    use crate::adaptive::TierMode;
    let data: Vec<i64> = (0..2048)
        .map(|i| ((i * 2654435761i64) % 1000) * 2)
        .collect();

    // Point-heavy workload -> bloom sketches.
    let mut zm = AdaptiveZonemap::new(
        data.len(),
        AdaptiveConfig {
            tier_mode: TierMode::Adaptive,
            tier_after_scans: 1,
            enable_split: false,
            enable_merge: false,
            enable_deactivate: false,
            ..small_config()
        },
    );
    for v in 0..6i64 {
        run_query(&mut zm, &data, RangePredicate::point(v * 200));
    }
    zm.apply_tiers(&data);
    let stats = zm.tier_stats();
    assert!(stats.blooms_built > 0, "point workload should pick blooms");
    assert_eq!(stats.imprints_built, 0);

    // Range-heavy workload -> imprints.
    let mut zm = AdaptiveZonemap::new(
        data.len(),
        AdaptiveConfig {
            tier_mode: TierMode::Adaptive,
            tier_after_scans: 1,
            enable_split: false,
            enable_merge: false,
            enable_deactivate: false,
            ..small_config()
        },
    );
    for q in 0..6i64 {
        run_query(
            &mut zm,
            &data,
            RangePredicate::between(q * 100, q * 100 + 80),
        );
    }
    zm.apply_tiers(&data);
    let stats = zm.tier_stats();
    assert!(
        stats.imprints_built > 0,
        "range workload should pick imprints"
    );
    assert_eq!(stats.blooms_built, 0);
}

#[test]
fn useless_tier_is_dropped_with_rebuild_backoff() {
    use crate::adaptive::TierMode;
    let data: Vec<i64> = (0..1024).map(|i| (i * 2654435761i64) % 1000).collect();
    // Bloom sketches answer only point predicates; a pure range workload
    // consults them for nothing, so the drop window must retire them.
    let cfg = AdaptiveConfig {
        tier_mode: TierMode::Bloom,
        tier_after_scans: 1,
        tier_drop_after: 8,
        // Merges would clear the tier before its drop window is judged.
        enable_split: false,
        enable_merge: false,
        enable_deactivate: false,
        ..small_config()
    };
    let mut zm = AdaptiveZonemap::new(data.len(), cfg);
    let pred = RangePredicate::between(200, 400);
    for _ in 0..4 {
        run_query(&mut zm, &data, pred);
    }
    assert!(zm.apply_tiers(&data).built > 0);
    let epoch_after_build = zm.mutation_epoch();

    for _ in 0..8 {
        run_query(&mut zm, &data, pred);
    }
    let report = zm.apply_tiers(&data);
    assert!(report.dropped > 0, "hitless tier survived its window");
    assert_eq!(zm.zones_tiered(), 0);
    assert!(zm.trace().totals().tier_dropped > 0);
    assert!(
        zm.mutation_epoch() > epoch_after_build,
        "tier drop must be reader-visible"
    );

    // Backoff: the very next pass must not rebuild immediately.
    assert_eq!(zm.apply_tiers(&data).built, 0, "rebuild ignored backoff");
}

/// Seeded protocol bug: a bloom sketch built over the *wrong* value set
/// makes the tier exclude a zone that holds a qualifying row — the
/// classic widened-miss false skip. The shadow oracle must abort and
/// name the bloom decision that caused it.
#[cfg(feature = "audit")]
#[test]
fn audit_catches_seeded_bloom_false_skip() {
    use crate::adaptive::zone::ZoneTier;
    use crate::adaptive::TierMode;
    use ads_storage::BloomSketch;
    use std::sync::Arc;

    let data: Vec<i64> = (0..2048)
        .map(|i| ((i * 2654435761i64) % 1000) * 2)
        .collect();
    let cfg = AdaptiveConfig {
        tier_mode: TierMode::Bloom,
        tier_after_scans: 1,
        enable_split: false,
        enable_merge: false,
        enable_deactivate: false,
        enable_mask: false,
        ..small_config()
    };
    let mut zm = AdaptiveZonemap::new(data.len(), cfg);
    for v in [0i64, 400, 800, 1200] {
        run_query(&mut zm, &data, RangePredicate::point(v));
    }
    assert!(zm.apply_tiers(&data).built > 0, "tiers should amortise");

    // Sanity: with honest sketches, probing a present value never trips
    // the oracle.
    let present = data[17];
    let honest = zm.prune(&RangePredicate::point(present));
    crate::audit::verify_outcome(
        &data,
        None,
        &RangePredicate::point(present),
        &honest,
        None,
        "seeded-bloom",
    );

    // Seed the bug: every bloom tier is replaced by one built over a
    // disjoint value set, so present values now probe as absent.
    let wrong = [999_983i64];
    let mut swapped = 0;
    for z in zm.zones.iter_mut() {
        if matches!(z.tier, Some(ZoneTier::Bloom(_))) {
            z.tier = Some(ZoneTier::Bloom(Arc::new(BloomSketch::build(
                &wrong,
                8,
                1 << 16,
            ))));
            swapped += 1;
        }
    }
    assert!(swapped > 0, "no bloom tier to corrupt");

    let pred = RangePredicate::point(present);
    let outcome = zm.prune(&pred);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        crate::audit::verify_outcome(&data, None, &pred, &outcome, None, "seeded-bloom");
    }))
    .expect_err("corrupted bloom sketch must be caught as a false skip");
    let msg = err
        .downcast_ref::<String>()
        .expect("panic carries a message");
    assert!(msg.contains("FALSE SKIP"), "unexpected abort: {msg}");
    assert!(
        msg.contains("skip:bloom"),
        "trace must name the bloom decision: {msg}"
    );
}

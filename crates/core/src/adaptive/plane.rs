//! The SoA prune plane: dense, probe-order copies of the only zone fields
//! the hot prune loop needs.
//!
//! `AdaptiveZonemap` stores zones as an array of structs — enum state,
//! stats, mask, split bookkeeping — which is the right shape for
//! adaptation logic but the wrong shape for probing: a probe that only
//! wants "is this zone built, and do its bounds overlap the predicate?"
//! drags the whole ~hundred-byte record through cache. The plane mirrors
//! exactly that probe-critical subset as parallel arrays:
//!
//! * `mins[z]` / `maxs[z]` — the zone's `(min, max)` bounds, valid only
//!   when the zone is built (fold identities otherwise, never read);
//! * `built` — a bitset with bit `z` set iff `zones[z].state` is `Built`.
//!
//! The prune loop streams these dense words and touches the full
//! [`AdaptiveZone`](crate::adaptive::zone::AdaptiveZone) record only for
//! zones that survive the bounds test (stats feedback, value masks, split
//! decisions) — the minority on any workload where skipping is paying off.
//!
//! **Invariant:** the plane mirrors `zones` exactly — same length, same
//! built-set, same bounds. Cheap transitions (lazy build, bounds
//! tightening, appended zones) update it incrementally; structural
//! rewrites (split/merge/deactivate/coalesce/revive) call
//! [`PrunePlane::rebuild`]. `assert_invariants` checks the mirror in
//! debug builds, and the property suite checks prune outcomes against the
//! retained AoS reference loop.

use crate::adaptive::zone::{AdaptiveZone, ZoneState};
use ads_storage::DataValue;

/// Dense structure-of-arrays mirror of the probe-critical zone fields.
#[derive(Debug, Clone)]
pub(crate) struct PrunePlane<T: DataValue> {
    pub(crate) mins: Vec<T>,
    pub(crate) maxs: Vec<T>,
    /// Bit `z` set iff zone `z` is `Built`.
    pub(crate) built: Vec<u64>,
    /// Bit `z` set iff zone `z` carries a reorganized payload. Checked
    /// only for zones that survive the bounds test, so the flat fast
    /// path never reads it.
    pub(crate) reorg: Vec<u64>,
    /// Deferred `record_skip()` calls per zone. The hot skip path bumps
    /// this dense counter instead of the zone's `ZoneStats` (which would
    /// drag the cold AoS record through cache); the counts are flushed
    /// into the real stats before anything reads or resets them
    /// (`AdaptiveZonemap::flush_pending_skips`).
    pub(crate) pending_skips: Vec<u32>,
}

impl<T: DataValue> PrunePlane<T> {
    /// Builds the plane from scratch to mirror `zones`.
    ///
    /// epoch: constructor — the plane it assembles is not reachable by
    /// any reader until the owning zonemap is published.
    pub(crate) fn from_zones(zones: &[AdaptiveZone<T>]) -> Self {
        let mut plane = PrunePlane {
            mins: Vec::new(),
            maxs: Vec::new(),
            built: Vec::new(),
            reorg: Vec::new(),
            pending_skips: Vec::new(),
        };
        plane.rebuild(zones);
        plane
    }

    /// Rewrites the plane to mirror `zones` — the catch-all used after
    /// structural operations that reorder or renumber zones.
    ///
    /// Zeroes `pending_skips`: callers owning un-flushed skip counts must
    /// flush them into the zone stats *before* the structural change
    /// renumbers zones (see `AdaptiveZonemap::flush_pending_skips`).
    pub(crate) fn rebuild(&mut self, zones: &[AdaptiveZone<T>]) {
        self.mins.clear();
        self.maxs.clear();
        self.built.clear();
        self.reorg.clear();
        self.mins.reserve(zones.len());
        self.maxs.reserve(zones.len());
        self.built.resize(zones.len().div_ceil(64), 0);
        self.reorg.resize(zones.len().div_ceil(64), 0);
        self.pending_skips.clear();
        self.pending_skips.resize(zones.len(), 0);
        for (z, zone) in zones.iter().enumerate() {
            match zone.state {
                ZoneState::Built { min, max, .. } => {
                    self.mins.push(min);
                    self.maxs.push(max);
                    self.built[z / 64] |= 1u64 << (z % 64);
                }
                _ => {
                    self.mins.push(T::MAX_VALUE);
                    self.maxs.push(T::MIN_VALUE);
                }
            }
            if zone.is_reorganized() {
                self.reorg[z / 64] |= 1u64 << (z % 64);
            }
        }
    }

    /// True iff zone `z` is built.
    #[inline]
    pub(crate) fn is_built(&self, z: usize) -> bool {
        self.built[z / 64] & (1u64 << (z % 64)) != 0
    }

    /// Records that zone `z` became (or stayed) built with bounds
    /// `(min, max)` — the lazy-build and bounds-tightening transitions.
    #[inline]
    pub(crate) fn set_built(&mut self, z: usize, min: T, max: T) {
        self.mins[z] = min;
        self.maxs[z] = max;
        self.built[z / 64] |= 1u64 << (z % 64);
    }

    /// True iff zone `z` carries a reorganized payload.
    #[inline]
    pub(crate) fn is_reorg(&self, z: usize) -> bool {
        self.reorg[z / 64] & (1u64 << (z % 64)) != 0
    }

    /// Records zone `z`'s layout flag — promotion sets, demotion clears.
    pub(crate) fn set_reorg(&mut self, z: usize, reorganized: bool) {
        if reorganized {
            self.reorg[z / 64] |= 1u64 << (z % 64);
        } else {
            self.reorg[z / 64] &= !(1u64 << (z % 64));
        }
    }

    /// Appends one unbuilt zone at the end — the append path.
    pub(crate) fn push_unbuilt(&mut self) {
        let z = self.mins.len();
        self.mins.push(T::MAX_VALUE);
        self.maxs.push(T::MIN_VALUE);
        self.pending_skips.push(0);
        if z / 64 >= self.built.len() {
            self.built.push(0);
        }
        if z / 64 >= self.reorg.len() {
            self.reorg.push(0);
        }
    }

    /// Defers one `record_skip()` for zone `z` into the dense counter.
    #[inline]
    pub(crate) fn defer_skip(&mut self, z: usize) {
        self.pending_skips[z] += 1;
    }

    /// Deferred skip count of zone `z`.
    #[inline]
    pub(crate) fn pending_skip(&self, z: usize) -> u32 {
        self.pending_skips[z]
    }

    /// Heap bytes held by the plane (for metadata accounting).
    pub(crate) fn heap_bytes(&self) -> usize {
        self.mins.capacity() * std::mem::size_of::<T>()
            + self.maxs.capacity() * std::mem::size_of::<T>()
            + self.built.capacity() * std::mem::size_of::<u64>()
            + self.reorg.capacity() * std::mem::size_of::<u64>()
            + self.pending_skips.capacity() * std::mem::size_of::<u32>()
    }

    /// True iff the plane exactly mirrors `zones` (length, built-set,
    /// bounds). Used by `assert_invariants` and the property tests.
    pub(crate) fn mirrors(&self, zones: &[AdaptiveZone<T>]) -> bool {
        if self.mins.len() != zones.len()
            || self.maxs.len() != zones.len()
            || self.pending_skips.len() != zones.len()
            || self.built.len() < zones.len().div_ceil(64)
            || self.reorg.len() < zones.len().div_ceil(64)
        {
            return false;
        }
        // total_cmp equality, not `==`: NaN zone bounds are legitimate
        // (a zone containing NaN has max = NaN under totalOrder) and must
        // still compare equal to their plane copy.
        let same = |a: T, b: T| a.total_cmp(&b) == std::cmp::Ordering::Equal;
        zones.iter().enumerate().all(|(z, zone)| {
            let state_ok = match zone.state {
                ZoneState::Built { min, max, .. } => {
                    self.is_built(z) && same(self.mins[z], min) && same(self.maxs[z], max)
                }
                _ => !self.is_built(z),
            };
            state_ok && self.is_reorg(z) == zone.is_reorganized()
        })
    }
}

//! Per-zone metadata tier policy: build, choose, and drop.
//!
//! Min/max zone bounds are blind to two predicate shapes: a point probe
//! inside a wide `[min, max]` interval (the bounds overlap even when no
//! row holds the value) and a mid-selectivity range over a zone that
//! cannot refine positionally. Tiers close both gaps with per-zone
//! optional sketches — a [`BloomSketch`](ads_storage::BloomSketch) over
//! the zone's value set for the first, per-cache-line
//! [`Imprints`](ads_storage::Imprints) for the second — paid for and
//! retired under the same feedback discipline zones themselves use:
//!
//! * **build** lazily, once a zone's observed scan volume has amortised
//!   one build pass over its rows (`tier_after_scans`);
//! * **choose** per zone from the observed predicate shape: point-heavy
//!   zones get a bloom sketch, range-heavy ones imprints
//!   ([`TierMode::Adaptive`]); forced modes exist for the ablation grid;
//! * **drop** when a consultation window shows the tier almost never
//!   excludes anything (`tier_drop_after` probes at
//!   `tier_drop_min_hit_rate` or below), with exponential rebuild
//!   backoff so a hopeless zone stops re-paying the build.
//!
//! Like reorganization, tier changes run on the owner's side of the
//! publication protocol and reach readers only through the next epoch'd
//! snapshot swap; payloads are `Arc`-shared so a held snapshot keeps
//! answering after the owner drops or replaces a tier.

use crate::adaptive::config::TierMode;
use crate::adaptive::zone::{ZoneLayout, ZoneState, ZoneTier};
use crate::adaptive::zonemap::AdaptiveZonemap;
use crate::trace::AdaptEvent;
use ads_storage::{BloomSketch, DataValue, Imprints};
use std::sync::Arc;
use std::time::Instant;

/// Lifetime tier counters of one zonemap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Bloom sketches built over zones.
    pub blooms_built: u64,
    /// Imprint sketches built over zones.
    pub imprints_built: u64,
    /// Tiers dropped by the feedback policy.
    pub tiers_dropped: u64,
    /// Tier consultations that excluded at least one row.
    pub tier_skips: u64,
    /// Rows excluded by tier probes (full zone skips plus skipped
    /// sub-zone line runs) that the `(min, max)` bounds could not.
    pub tier_rows_excluded: u64,
    /// Nanoseconds spent inside [`AdaptiveZonemap::apply_tiers`].
    pub build_ns: u64,
}

impl TierStats {
    /// Merges another stats block into this one (sharded aggregation).
    pub fn merge(&mut self, other: &TierStats) {
        self.blooms_built += other.blooms_built;
        self.imprints_built += other.imprints_built;
        self.tiers_dropped += other.tiers_dropped;
        self.tier_skips += other.tier_skips;
        self.tier_rows_excluded += other.tier_rows_excluded;
        self.build_ns += other.build_ns;
    }

    /// Tiers built of either kind.
    pub fn tiers_built(&self) -> u64 {
        self.blooms_built + self.imprints_built
    }
}

/// What one [`AdaptiveZonemap::apply_tiers`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierReport {
    /// Tiers built by this pass (blooms + imprints).
    pub built: u64,
    /// Tiers dropped by this pass.
    pub dropped: u64,
    /// Wall time of this pass in nanoseconds.
    pub build_ns: u64,
}

impl TierReport {
    /// True when the pass attached or dropped any tier.
    pub fn changed(&self) -> bool {
        self.built + self.dropped > 0
    }
}

impl<T: DataValue> AdaptiveZonemap<T> {
    /// One tier maintenance pass over `base` (the column this zonemap
    /// indexes): drops tiers whose consultation window shows no benefit,
    /// then builds tiers over built flat zones whose scan volume has
    /// amortised a build pass. No-op (and free) unless `tier_mode` is
    /// enabled.
    ///
    /// Runs on the owner's side of the publication protocol — inline via
    /// [`maintain`](crate::index::SkippingIndex::maintain) or on the
    /// server's maintenance thread — never on a shared snapshot.
    ///
    /// epoch: bumps once at the end under `report.changed()` — true
    /// exactly when a tier was built or dropped; a pass that only
    /// adjusted windows/backoff counters is reader-invisible.
    pub fn apply_tiers(&mut self, base: &[T]) -> TierReport {
        let mode = self.config.tier_mode;
        if !mode.enabled() {
            return TierReport::default();
        }
        debug_assert_eq!(base.len(), self.len(), "base column / zonemap mismatch");
        let t0 = Instant::now();
        let mut report = TierReport::default();
        let mut events: Vec<AdaptEvent> = Vec::new();
        for zone in &mut self.zones {
            // Drop policy first: judge a full consultation window.
            if zone.tier.is_some() && zone.tier_stats.tier_probes >= self.config.tier_drop_after {
                let hit_rate = f64::from(zone.tier_stats.tier_hits)
                    / f64::from(zone.tier_stats.tier_probes.max(1));
                if hit_rate <= self.config.tier_drop_min_hit_rate {
                    zone.drop_tier();
                    let drops = zone.tier_stats.drops.saturating_add(1);
                    zone.tier_stats.drops = drops;
                    // Exponential rebuild backoff, anchored at the
                    // current scan count so the zone must earn a fresh
                    // batch of scans before retrying. Quadrupling per
                    // drop: build cost dominates the tier overhead on
                    // hopeless zones (the imprint build resamples and
                    // re-bins the whole zone), so hopeless zones must
                    // go quiet after very few cycles.
                    zone.tier_stats.next_build_scans = zone.stats.scans.saturating_add(
                        self.config
                            .tier_after_scans
                            .saturating_mul(1 << (2 * drops).min(16)),
                    );
                    report.dropped += 1;
                    events.push(AdaptEvent::TierDropped {
                        range: zone.range(),
                    });
                    continue;
                }
                // The tier is paying: keep it and open a fresh window.
                zone.tier_stats.reset_window();
            }
            // Build policy: built flat zones only. Reorganized zones
            // resolve positionally (a tier is redundant); dead and
            // unbuilt zones have no metadata for a tier to refine.
            let eligible = zone.tier.is_none()
                && matches!(zone.state, ZoneState::Built { .. })
                && matches!(zone.layout, ZoneLayout::Flat);
            if !eligible {
                continue;
            }
            let floor = zone
                .tier_stats
                .next_build_scans
                .max(self.config.tier_after_scans);
            if zone.stats.scans < floor {
                continue;
            }
            let kind = match mode {
                TierMode::Bloom => TierMode::Bloom,
                TierMode::Imprint => TierMode::Imprint,
                TierMode::Adaptive => {
                    // Chooser: observed predicate shape decides. Every
                    // scan implies an overlapping probe, which bumped a
                    // shape counter, so samples exist by construction.
                    let Some(frac) = zone.tier_stats.point_fraction() else {
                        continue;
                    };
                    if frac >= self.config.tier_point_fraction {
                        TierMode::Bloom
                    } else {
                        TierMode::Imprint
                    }
                }
                TierMode::Off => unreachable!("gated above"),
            };
            let rows = &base[zone.start..zone.end];
            let tier = match kind {
                TierMode::Bloom => {
                    report.built += 1;
                    self.tier_lifetime.blooms_built += 1;
                    ZoneTier::Bloom(Arc::new(BloomSketch::build(
                        rows,
                        self.config.tier_bloom_bits_per_row,
                        self.config.tier_max_bytes,
                    )))
                }
                _ => {
                    report.built += 1;
                    self.tier_lifetime.imprints_built += 1;
                    ZoneTier::Imprint(Arc::new(Imprints::build(
                        rows,
                        self.config.tier_imprint_line_rows,
                        ads_storage::imprint::MAX_BINS,
                    )))
                }
            };
            events.push(AdaptEvent::TierBuilt {
                range: zone.range(),
                kind: tier.kind(),
            });
            zone.tier = Some(tier);
            zone.tier_stats.reset_window();
        }
        for ev in events {
            self.trace.record(self.query_seq, ev);
        }
        // narrowing: saturates at ~584 years of nanoseconds.
        report.build_ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.tier_lifetime.tiers_dropped += report.dropped;
        self.tier_lifetime.build_ns += report.build_ns;
        if report.changed() {
            self.mutation_epoch += 1;
        }
        #[cfg(debug_assertions)]
        self.assert_invariants();
        report
    }

    /// Lifetime tier counters (builds, drops, skip benefit).
    pub fn tier_stats(&self) -> TierStats {
        self.tier_lifetime
    }

    /// Number of zones currently carrying a metadata tier.
    pub fn zones_tiered(&self) -> usize {
        self.zones.iter().filter(|z| z.has_tier()).count()
    }
}

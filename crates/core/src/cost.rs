//! The cost model trading metadata reads against scan work.
//!
//! The paper's core tension: a zonemap probe costs a metadata read; a skip
//! saves a zone's worth of scanning. Over data where skips never fire the
//! probes are pure loss. The model reduces both sides to one unit — "tuple
//! scan equivalents" — and answers the granularity questions adaptation
//! needs: how small may a zone be before probing it can never pay off, and
//! when is a region's metadata a net loss.

/// Relative costs of the two primitive operations.
///
/// ```
/// use ads_core::CostModel;
/// let m = CostModel::new(8.0);
/// // A 4096-row zone skipped 10% of the time clearly pays for its probe:
/// assert!(m.zone_benefit(4096, 0.1) > 0.0);
/// // A zone that never skips is pure loss:
/// assert!(m.zone_benefit(4096, 0.0) < 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Cost of examining one zone's metadata, measured in tuple-scan
    /// equivalents. A probe touches one small metadata entry but is a
    /// dependent branch; 4–16 tuples is typical for tight i64 scan loops.
    pub probe_cost_tuples: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Conservative default; `calibrate` measures the real ratio.
        CostModel {
            probe_cost_tuples: 8.0,
        }
    }
}

impl CostModel {
    /// Builds a model with an explicit probe/scan cost ratio.
    ///
    /// # Panics
    /// Panics unless `probe_cost_tuples` is finite and positive.
    pub fn new(probe_cost_tuples: f64) -> Self {
        assert!(
            probe_cost_tuples.is_finite() && probe_cost_tuples > 0.0,
            "probe cost must be positive"
        );
        CostModel { probe_cost_tuples }
    }

    /// Measures the probe/scan ratio on this machine by timing the two
    /// primitive loops over synthetic data of `sample` tuples.
    pub fn calibrate(sample: usize) -> Self {
        use std::time::Instant;
        let sample = sample.max(1 << 16);
        let data: Vec<i64> = (0..sample as i64)
            .map(|i| i.wrapping_mul(2654435761))
            .collect();

        // Scan cost per tuple.
        let t0 = Instant::now();
        // live: synthetic calibration data generated just above — no
        // delete vector exists for it.
        let hits = ads_storage::scan::count_in_range(&data, 0, i64::MAX / 2);
        let scan_ns_per_tuple = t0.elapsed().as_nanos() as f64 / sample as f64;
        std::hint::black_box(hits);

        // Probe cost per zone: interval tests over a dense metadata array.
        let zones: Vec<(i64, i64)> = data
            .chunks(64)
            .map(|c| {
                // invariant: chunks() never yields an empty slice.
                // live: same synthetic delete-free calibration data.
                let (min, max) = ads_storage::scan::min_max(c).expect("non-empty chunk");
                (min, max)
            })
            .collect();
        let t1 = Instant::now();
        let mut skipped = 0usize;
        for &(min, max) in &zones {
            // narrowing: bool -> usize is 0 or 1 by definition.
            skipped += (max < 0 || min > i64::MAX / 2) as usize;
        }
        std::hint::black_box(skipped);
        let probe_ns = t1.elapsed().as_nanos() as f64 / zones.len() as f64;

        let ratio = (probe_ns / scan_ns_per_tuple.max(1e-3)).clamp(0.5, 64.0);
        CostModel {
            probe_cost_tuples: ratio,
        }
    }

    /// Smallest zone size for which a skip can ever repay its probe: a
    /// skipped zone saves `rows` tuple-scans and costs one probe, so zones
    /// below this row count are never worth probing.
    pub fn min_profitable_zone_rows(&self) -> usize {
        // narrowing: probe_cost_tuples is a small non-negative model
        // constant (row counts), far below 2^52.
        self.probe_cost_tuples.ceil() as usize
    }

    /// Expected net benefit, in tuple-scan equivalents, of keeping metadata
    /// for a zone of `rows` rows that is skipped with probability
    /// `skip_rate`: `skip_rate * rows - probe_cost`. Negative means the
    /// metadata is a net loss (candidate for merge or deactivation).
    pub fn zone_benefit(&self, rows: usize, skip_rate: f64) -> f64 {
        skip_rate * rows as f64 - self.probe_cost_tuples
    }

    /// Net benefit of splitting one `rows`-row zone into two halves, given
    /// the probability `half_skip_rate` that a half can be skipped when the
    /// whole could not: saves `half_skip_rate * rows/2` scans per query at
    /// the price of one extra probe per query.
    pub fn split_benefit(&self, rows: usize, half_skip_rate: f64) -> f64 {
        half_skip_rate * rows as f64 / 2.0 - self.probe_cost_tuples
    }

    /// Cost of answering a query that probes `probes` zones and scans
    /// `scanned_rows` tuples, in tuple-scan equivalents.
    pub fn query_cost(&self, probes: usize, scanned_rows: usize) -> f64 {
        probes as f64 * self.probe_cost_tuples + scanned_rows as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let m = CostModel::default();
        assert!(m.probe_cost_tuples > 0.0);
        assert!(m.min_profitable_zone_rows() >= 1);
    }

    #[test]
    #[should_panic(expected = "probe cost must be positive")]
    fn rejects_nonpositive() {
        CostModel::new(0.0);
    }

    #[test]
    fn zone_benefit_signs() {
        let m = CostModel::new(8.0);
        // 1000-row zone skipped half the time: clearly profitable.
        assert!(m.zone_benefit(1000, 0.5) > 0.0);
        // Never skipped: pure loss.
        assert!(m.zone_benefit(1000, 0.0) < 0.0);
        // Tiny zone: probe cost dominates even at certain skip.
        assert!(m.zone_benefit(4, 1.0) < 0.0);
    }

    #[test]
    fn split_benefit_signs() {
        let m = CostModel::new(8.0);
        assert!(m.split_benefit(4096, 0.5) > 0.0);
        assert!(m.split_benefit(4096, 0.0) < 0.0);
        assert!(m.split_benefit(8, 1.0) < 0.0);
    }

    #[test]
    fn query_cost_combines_linearly() {
        let m = CostModel::new(10.0);
        assert_eq!(m.query_cost(3, 100), 130.0);
        assert_eq!(m.query_cost(0, 0), 0.0);
    }

    #[test]
    fn calibrate_produces_bounded_ratio() {
        let m = CostModel::calibrate(1 << 16);
        assert!(m.probe_cost_tuples >= 0.5 && m.probe_cost_tuples <= 64.0);
    }
}

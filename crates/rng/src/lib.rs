//! # ads-rng — a small, self-contained, seedable PRNG
//!
//! The workload generators need nothing more from a random source than
//! deterministic replay from a `u64` seed and uniform draws over ranges,
//! so this crate provides exactly that with zero dependencies: a
//! xoshiro256** generator seeded through SplitMix64, with a `gen_range`
//! surface mirroring the subset of `rand` the repository used.
//!
//! Not cryptographic; statistical quality is ample for synthetic data.
//!
//! ```
//! use ads_rng::StdRng;
//! let mut a = StdRng::seed_from_u64(42);
//! let mut b = StdRng::seed_from_u64(42);
//! assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A deterministic xoshiro256** generator.
///
/// The name matches the `rand` type it replaces so call sites read the
/// same; the algorithm differs (and so do the streams), which only matters
/// to code asserting on exact generated values — none does.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Seeds the full 256-bit state from one `u64` via SplitMix64, as the
    /// xoshiro reference implementation recommends.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// A uniform draw below `bound` (Lemire's multiply-shift; the bias is
    /// below 2^-64 per draw, immaterial for workload synthesis).
    #[inline]
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from `range`.
    ///
    /// # Panics
    /// Panics when the range is empty, matching `rand`'s contract.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// Range shapes [`StdRng::gen_range`] accepts.
pub trait SampleRange {
    /// The drawn value's type.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! impl_int_sample {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_sample!(i32, i64, u32, u64, usize, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = StdRng::seed_from_u64(8);
        assert_ne!(a[0], r.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(-50i64..1000);
            assert!((-50..1000).contains(&v));
            let u = r.gen_range(3usize..=7);
            assert!((3..=7).contains(&u));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = StdRng::seed_from_u64(42);
        let n = 100_000;
        let below = (0..n)
            .filter(|_| r.gen_range(0i64..1_000_000) < 500_000)
            .count();
        let frac = below as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "{frac}");
    }

    #[test]
    fn inclusive_hits_endpoints() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        StdRng::seed_from_u64(0).gen_range(5i64..5);
    }
}

//! Property suite backfilling `ColumnImprints` coverage against the
//! sorted-oracle baseline: for seed-looped random columns and predicate
//! streams, the rows the imprints admit (full-match plus candidates that
//! actually qualify) must equal exactly the qualifying set the sorted
//! oracle identifies — imprints may over-admit, never lose a row, and
//! never full-match a non-qualifying one.

use ads_baselines::{ColumnImprints, SortedOracle};
use ads_core::{RangePredicate, SkippingIndex};

/// Deterministic splitmix64 stream — keeps the suite dependency-free.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Column shapes the suite sweeps: sorted, random, clustered, heavy
/// duplicates.
fn column(shape: usize, rows: usize, domain: i64, rng: &mut Mix) -> Vec<i64> {
    match shape % 4 {
        0 => (0..rows as i64).map(|i| i * domain / rows as i64).collect(),
        1 => (0..rows).map(|_| rng.below(domain as u64) as i64).collect(),
        2 => {
            // 8 positionally contiguous value clusters.
            let per = rows.div_ceil(8);
            (0..rows)
                .map(|i| {
                    let center = ((i / per) as i64 * domain / 8) + domain / 16;
                    center + rng.below(1 + domain as u64 / 64) as i64
                })
                .collect()
        }
        _ => (0..rows).map(|_| rng.below(16) as i64 * 100).collect(),
    }
}

#[test]
fn imprint_admission_matches_sorted_oracle_exactly() {
    const DOMAIN: i64 = 100_000;
    for seed in 0..24u64 {
        let mut rng = Mix(seed.wrapping_mul(0x9E37_79B9) + 1);
        let rows = 1_000 + (seed as usize % 5) * 700;
        let data = column(seed as usize, rows, DOMAIN, &mut rng);
        let mut imp = ColumnImprints::build(
            &data,
            1 + (seed as usize % 3) * 7,
            [2, 16, 64][seed as usize % 3],
        );
        let mut oracle = SortedOracle::build(&data);

        for _ in 0..16 {
            let lo = rng.below(DOMAIN as u64) as i64;
            let width = rng.below(1 + DOMAIN as u64 / 4) as i64;
            let pred = RangePredicate::between(lo, (lo + width).min(DOMAIN));

            // Ground truth from the oracle (view coordinates, exact).
            let want = oracle.prune(&pred).rows_full_match();

            let out = imp.prune(&pred);
            // Never-false-negative + exact-full-match: filtering the
            // candidates recovers exactly the oracle's qualifying count.
            let mut got = out.rows_full_match();
            for r in out.must_scan.ranges() {
                got += data[r.start..r.end]
                    .iter()
                    .filter(|&&v| pred.matches(v))
                    .count();
            }
            assert_eq!(
                got, want,
                "seed {seed} {pred}: imprints admitted {got}, oracle says {want}"
            );
            for r in out.full_match.ranges() {
                assert!(
                    data[r.start..r.end].iter().all(|&v| pred.matches(v)),
                    "seed {seed} {pred}: full-match range {r:?} holds a non-qualifying row"
                );
            }
        }
    }
}

#[test]
fn imprint_admission_matches_oracle_through_appends() {
    const DOMAIN: i64 = 10_000;
    let mut rng = Mix(77);
    let mut data = column(1, 800, DOMAIN, &mut rng);
    let mut imp = ColumnImprints::build(&data, 8, 32);
    let mut oracle = SortedOracle::build(&data);
    for batch in 0..6 {
        let fresh: Vec<i64> = (0..45 + batch * 13)
            .map(|_| rng.below(DOMAIN as u64) as i64)
            .collect();
        data.extend_from_slice(&fresh);
        imp.on_append(&fresh, &data);
        oracle.on_append(&fresh, &data);
        for _ in 0..8 {
            let lo = rng.below(DOMAIN as u64) as i64;
            let pred = RangePredicate::between(lo, (lo + 500).min(DOMAIN));
            let want = oracle.prune(&pred).rows_full_match();
            let out = imp.prune(&pred);
            let mut got = out.rows_full_match();
            for r in out.must_scan.ranges() {
                got += data[r.start..r.end]
                    .iter()
                    .filter(|&&v| pred.matches(v))
                    .count();
            }
            assert_eq!(got, want, "batch {batch} {pred}");
        }
    }
}

//! The no-index baseline: scan everything, always.

use ads_core::{PruneOutcome, RangePredicate, SkippingIndex};
use ads_storage::DataValue;

/// A "skipping index" that never skips: the plain fast-scan baseline every
/// speedup in the evaluation is measured against.
#[derive(Debug, Clone)]
pub struct FullScan {
    len: usize,
}

impl FullScan {
    /// Creates the baseline over a column of `len` rows.
    pub fn new(len: usize) -> Self {
        FullScan { len }
    }
}

impl<T: DataValue> SkippingIndex<T> for FullScan {
    fn name(&self) -> String {
        "full-scan".to_string()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn prune(&mut self, _pred: &RangePredicate<T>) -> PruneOutcome {
        PruneOutcome::scan_all(self.len)
    }

    fn on_append(&mut self, _appended: &[T], base: &[T]) {
        self.len = base.len();
    }

    fn metadata_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_scans_everything() {
        let mut fs = FullScan::new(1000);
        let out = SkippingIndex::<i64>::prune(&mut fs, &RangePredicate::between(5, 6));
        assert_eq!(out.rows_to_scan(), 1000);
        assert_eq!(out.zones_probed, 0);
        assert_eq!(SkippingIndex::<i64>::metadata_bytes(&fs), 0);
    }

    #[test]
    fn append_tracks_length() {
        let mut fs = FullScan::new(3);
        let base = [1i64, 2, 3, 4, 5];
        fs.on_append(&base[3..], &base);
        let out = SkippingIndex::<i64>::prune(&mut fs, &RangePredicate::all());
        assert_eq!(out.rows_to_scan(), 5);
    }
}

//! Column imprints (Sidirourgos & Kersten, SIGMOD 2013): cache-line-level
//! bit sketches over a value histogram.
//!
//! For every cache line of the column, an *imprint* records — as a 64-bit
//! mask — which histogram bins the line's values fall into. A predicate
//! maps to a bin mask; lines whose imprint does not intersect the mask are
//! skipped. Consecutive identical imprints are run-length compressed, which
//! both shrinks metadata and lets pruning decide whole runs at once.
//!
//! This is the main non-adaptive alternative to zonemaps for in-memory
//! skipping and serves as a baseline in the evaluation.

use ads_core::{PruneOutcome, RangePredicate, SkippingIndex};
use ads_storage::{DataValue, RangeSet};

/// Maximum number of histogram bins (one bit each in a 64-bit imprint).
pub const MAX_BINS: usize = 64;

/// A run of consecutive cache lines sharing one imprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ImprintRun {
    imprint: u64,
    lines: u32,
}

/// Column imprints over one column.
#[derive(Debug, Clone)]
pub struct ColumnImprints<T: DataValue> {
    /// Ascending bin boundaries; `boundaries.len() + 1` bins. Bin `k` holds
    /// values `v` with exactly `k` boundaries `<= v`.
    boundaries: Vec<T>,
    values_per_line: usize,
    runs: Vec<ImprintRun>,
    len: usize,
}

impl<T: DataValue> ColumnImprints<T> {
    /// Builds imprints over `data` with the given line width (rows per
    /// imprint; 8 matches one 64-byte cache line of `i64`) and bin count.
    ///
    /// # Panics
    /// Panics if `values_per_line == 0` or `num_bins` is not in `2..=64`.
    pub fn build(data: &[T], values_per_line: usize, num_bins: usize) -> Self {
        assert!(values_per_line > 0, "values_per_line must be positive");
        assert!(
            (2..=MAX_BINS).contains(&num_bins),
            "num_bins must be in 2..=64"
        );
        let boundaries = equi_depth_boundaries(data, num_bins);
        let mut imp = ColumnImprints {
            boundaries,
            values_per_line,
            runs: Vec::new(),
            len: 0,
        };
        imp.extend_lines_from(0, data);
        imp
    }

    /// Default parameters: 8-value lines (one i64 cache line), 64 bins.
    pub fn with_defaults(data: &[T]) -> Self {
        ColumnImprints::build(data, 8, MAX_BINS)
    }

    /// Number of compressed imprint runs (probe cost per query).
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Bin index of a value: the number of boundaries `<= v`.
    fn bin_of(&self, v: T) -> usize {
        self.boundaries.partition_point(|b| b.le_total(&v))
    }

    /// Imprint of the rows in `[start, end)`.
    fn line_imprint(&self, data: &[T], start: usize, end: usize) -> u64 {
        let mut imp = 0u64;
        for &v in &data[start..end] {
            imp |= 1u64 << self.bin_of(v);
        }
        imp
    }

    /// Appends an imprint run for one line, RLE-merging with the tail.
    fn rle_push(&mut self, imprint: u64) {
        match self.runs.last_mut() {
            Some(run) if run.imprint == imprint && run.lines < u32::MAX => run.lines += 1,
            _ => self.runs.push(ImprintRun { imprint, lines: 1 }),
        }
    }

    /// Recomputes imprints for all lines from line `first_line` to the end
    /// of `base`, replacing whatever runs covered them.
    fn extend_lines_from(&mut self, first_line: usize, base: &[T]) {
        // Truncate runs down to exactly `first_line` lines.
        let mut kept_lines = 0usize;
        let mut kept_runs = 0usize;
        for run in &self.runs {
            if kept_lines + run.lines as usize <= first_line {
                kept_lines += run.lines as usize;
                kept_runs += 1;
            } else {
                break;
            }
        }
        self.runs.truncate(kept_runs);
        assert_eq!(
            kept_lines, first_line,
            "first_line must fall on a run boundary (callers split first)"
        );

        let vpl = self.values_per_line;
        let mut start = first_line * vpl;
        while start < base.len() {
            let end = (start + vpl).min(base.len());
            let imprint = self.line_imprint(base, start, end);
            self.rle_push(imprint);
            start = end;
        }
        self.len = base.len();
    }

    /// Bit mask with bits `a..=b` set.
    fn bits_between(a: usize, b: usize) -> u64 {
        debug_assert!(a <= b && b < 64);
        let width = b - a + 1;
        if width == 64 {
            u64::MAX
        } else {
            ((1u64 << width) - 1) << a
        }
    }
}

impl<T: DataValue> SkippingIndex<T> for ColumnImprints<T> {
    fn name(&self) -> String {
        format!(
            "imprints({}x{})",
            self.values_per_line,
            self.boundaries.len() + 1
        )
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn prune(&mut self, pred: &RangePredicate<T>) -> PruneOutcome {
        let lo_bin = self.bin_of(pred.lo);
        let hi_bin = self.bin_of(pred.hi);
        let mask = Self::bits_between(lo_bin, hi_bin);
        // Bins strictly between the predicate's edge bins hold only
        // qualifying values; lines composed purely of interior bins match
        // in full.
        let interior = if hi_bin >= lo_bin + 2 {
            Self::bits_between(lo_bin + 1, hi_bin - 1)
        } else {
            0
        };

        let mut out = PruneOutcome {
            must_scan: RangeSet::with_capacity(16),
            scan_units: Vec::new(),
            mask_requests: Vec::new(),
            full_match: RangeSet::with_capacity(4),
            reorg_units: Vec::new(),
            zones_probed: self.runs.len(),
            zones_skipped: 0,
        };
        let vpl = self.values_per_line;
        let mut line = 0usize;
        for run in &self.runs {
            let start = (line * vpl).min(self.len);
            line += run.lines as usize;
            let end = (line * vpl).min(self.len);
            if run.imprint & mask == 0 {
                out.zones_skipped += 1;
            } else if run.imprint & !interior == 0 {
                out.full_match.push_span(start, end);
            } else {
                out.must_scan.push_span(start, end);
            }
        }
        out
    }

    fn on_append(&mut self, _appended: &[T], base: &[T]) {
        // The line containing the old tail may have been partial; rebuild
        // from that line onward. Bin boundaries stay fixed — imprints do
        // not adapt to domain drift, which E9 reports honestly.
        let first_dirty_line = self.len / self.values_per_line;
        // extend_lines_from requires a run boundary at first_dirty_line;
        // ensure it by splitting the tail run if needed.
        self.split_runs_at_line(first_dirty_line);
        self.extend_lines_from(first_dirty_line, base);
    }

    fn metadata_bytes(&self) -> usize {
        self.runs.capacity() * std::mem::size_of::<ImprintRun>()
            + self.boundaries.capacity() * std::mem::size_of::<T>()
    }
}

impl<T: DataValue> ColumnImprints<T> {
    /// Splits whichever run straddles `line` so that a run boundary exists
    /// exactly there.
    fn split_runs_at_line(&mut self, line: usize) {
        let mut acc = 0usize;
        for i in 0..self.runs.len() {
            let run_lines = self.runs[i].lines as usize;
            if acc + run_lines > line {
                let before = (line - acc) as u32;
                if before > 0 {
                    let imprint = self.runs[i].imprint;
                    self.runs[i].lines -= before;
                    self.runs.insert(
                        i,
                        ImprintRun {
                            imprint,
                            lines: before,
                        },
                    );
                }
                return;
            }
            acc += run_lines;
        }
    }
}

/// Approximate equi-depth bin boundaries from a (possibly sampled) copy of
/// the data. Returns strictly increasing boundaries, at most `num_bins - 1`.
fn equi_depth_boundaries<T: DataValue>(data: &[T], num_bins: usize) -> Vec<T> {
    if data.is_empty() {
        return Vec::new();
    }
    const SAMPLE_CAP: usize = 8192;
    let step = data.len().div_ceil(SAMPLE_CAP).max(1);
    let mut sample: Vec<T> = data.iter().step_by(step).copied().collect();
    sample.sort_unstable_by(|a, b| a.total_cmp(b));
    let mut boundaries = Vec::with_capacity(num_bins - 1);
    for k in 1..num_bins {
        let idx = k * sample.len() / num_bins;
        let candidate = sample[idx.min(sample.len() - 1)];
        if boundaries
            .last()
            .is_none_or(|last: &T| last.lt_total(&candidate))
        {
            boundaries.push(candidate);
        }
    }
    boundaries
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_sound(imp: &mut ColumnImprints<i64>, data: &[i64], pred: RangePredicate<i64>) {
        let out = imp.prune(&pred);
        for (i, &v) in data.iter().enumerate() {
            if pred.matches(v) {
                assert!(
                    out.must_scan.contains(i) || out.full_match.contains(i),
                    "row {i} (value {v}) lost for {pred}"
                );
            }
        }
        // full_match ranges must contain only qualifying rows.
        for r in out.full_match.ranges() {
            for (i, &v) in data.iter().enumerate().take(r.end).skip(r.start) {
                assert!(pred.matches(v), "row {i} wrongly full-matched");
            }
        }
    }

    #[test]
    fn sound_on_sorted_data() {
        let data: Vec<i64> = (0..10_000).collect();
        let mut imp = ColumnImprints::with_defaults(&data);
        for lo in [0i64, 100, 5000, 9990] {
            check_sound(&mut imp, &data, RangePredicate::between(lo, lo + 500));
        }
    }

    #[test]
    fn sound_on_random_data() {
        let data: Vec<i64> = (0..8192).map(|i| (i * 2654435761i64) % 10_000).collect();
        let mut imp = ColumnImprints::build(&data, 8, 64);
        for q in 0..30 {
            let lo = (q * 331) % 9000;
            check_sound(&mut imp, &data, RangePredicate::between(lo, lo + 400));
        }
    }

    #[test]
    fn skips_on_clustered_data() {
        let mut data = vec![10i64; 4096];
        data.extend(vec![10_000i64; 4096]);
        let mut imp = ColumnImprints::with_defaults(&data);
        // With two distinct values the bins are (-inf,10), [10,10000),
        // [10000,inf): a predicate inside the top bin skips the low cluster.
        let out = imp.prune(&RangePredicate::between(10_000, 11_000));
        assert!(out.rows_to_scan() + out.rows_full_match() <= 4096 + 8);
        assert!(out.zones_skipped > 0);
        check_sound(&mut imp, &data, RangePredicate::between(9_000, 11_000));
    }

    #[test]
    fn rle_compresses_constant_regions() {
        let data = vec![7i64; 64 * 100];
        let imp = ColumnImprints::with_defaults(&data);
        assert_eq!(imp.num_runs(), 1);
    }

    #[test]
    fn full_match_on_interior_bins() {
        let data: Vec<i64> = (0..64_000).collect(); // sorted, wide domain
        let mut imp = ColumnImprints::with_defaults(&data);
        let out = imp.prune(&RangePredicate::between(10_000, 50_000));
        assert!(
            out.rows_full_match() > 0,
            "wide predicates over sorted data should full-match interior lines"
        );
    }

    #[test]
    fn append_keeps_soundness() {
        let mut data: Vec<i64> = (0..1000).collect();
        let mut imp = ColumnImprints::build(&data, 8, 32);
        for batch in 0..7 {
            let newvals: Vec<i64> = (0..37).map(|i| 1000 + batch * 37 + i).collect();
            data.extend_from_slice(&newvals);
            imp.on_append(&newvals, &data);
            check_sound(&mut imp, &data, RangePredicate::between(980, 1100));
            check_sound(&mut imp, &data, RangePredicate::between(0, 10));
        }
    }

    #[test]
    fn append_into_rle_run_splits_correctly() {
        let mut data = vec![5i64; 100];
        let mut imp = ColumnImprints::build(&data, 8, 16);
        assert_eq!(imp.num_runs(), 1);
        let newvals = vec![999_999i64; 20];
        data.extend_from_slice(&newvals);
        imp.on_append(&newvals, &data);
        check_sound(&mut imp, &data, RangePredicate::between(900_000, 1_000_000));
        check_sound(&mut imp, &data, RangePredicate::point(5));
    }

    #[test]
    fn bin_of_boundaries() {
        let data: Vec<i64> = (0..1024).collect();
        let imp = ColumnImprints::build(&data, 8, 4);
        // Monotone non-decreasing bin assignment.
        let mut prev = 0;
        for v in [0i64, 100, 500, 900, 1023] {
            let b = imp.bin_of(v);
            assert!(b >= prev);
            prev = b;
        }
        assert!(imp.bin_of(i64::MIN) == 0);
        assert_eq!(imp.bin_of(i64::MAX), imp.boundaries.len());
    }

    #[test]
    fn bits_between_edges() {
        assert_eq!(ColumnImprints::<i64>::bits_between(0, 63), u64::MAX);
        assert_eq!(ColumnImprints::<i64>::bits_between(0, 0), 1);
        assert_eq!(ColumnImprints::<i64>::bits_between(3, 5), 0b111000);
    }

    #[test]
    fn constant_column_single_bin() {
        let data = vec![42i64; 500];
        let mut imp = ColumnImprints::build(&data, 8, 64);
        check_sound(&mut imp, &data, RangePredicate::point(42));
        // The single boundary sits at 42, so everything below it skips;
        // ranges above 42 share the constant's bin and cannot skip.
        let out = imp.prune(&RangePredicate::between(10, 20));
        assert_eq!(out.rows_to_scan() + out.rows_full_match(), 0);
    }

    #[test]
    fn name_and_metadata() {
        let imp = ColumnImprints::build(&(0..640i64).collect::<Vec<_>>(), 8, 64);
        assert!(SkippingIndex::name(&imp).starts_with("imprints"));
        assert!(SkippingIndex::metadata_bytes(&imp) > 0);
    }

    #[test]
    fn empty_column() {
        let mut imp = ColumnImprints::build(&[] as &[i64], 8, 8);
        let out = imp.prune(&RangePredicate::all());
        assert_eq!(out.rows_to_scan(), 0);
    }
}

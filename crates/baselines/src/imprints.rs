//! Column imprints (Sidirourgos & Kersten, SIGMOD 2013): cache-line-level
//! bit sketches over a value histogram.
//!
//! The bit machinery (histogram bins, per-line imprints, RLE runs, run
//! classification) lives in [`ads_storage::Imprints`], where the adaptive
//! zonemap's per-zone imprint tier shares it. This wrapper is the
//! whole-column, eagerly-built baseline: it translates run verdicts into
//! the [`SkippingIndex`] prune protocol and serves as the main
//! non-adaptive alternative to zonemaps in the evaluation.

use ads_core::{PruneOutcome, RangePredicate, SkippingIndex};
use ads_storage::{DataValue, Imprints, RunVerdict};

/// Maximum number of histogram bins (one bit each in a 64-bit imprint).
pub const MAX_BINS: usize = ads_storage::imprint::MAX_BINS;

/// Column imprints over one column.
#[derive(Debug, Clone)]
pub struct ColumnImprints<T: DataValue> {
    sketch: Imprints<T>,
}

impl<T: DataValue> ColumnImprints<T> {
    /// Builds imprints over `data` with the given line width (rows per
    /// imprint; 8 matches one 64-byte cache line of `i64`) and bin count.
    ///
    /// # Panics
    /// Panics if `values_per_line == 0` or `num_bins` is not in `2..=64`.
    pub fn build(data: &[T], values_per_line: usize, num_bins: usize) -> Self {
        ColumnImprints {
            sketch: Imprints::build(data, values_per_line, num_bins),
        }
    }

    /// Default parameters: 8-value lines (one i64 cache line), 64 bins.
    pub fn with_defaults(data: &[T]) -> Self {
        ColumnImprints {
            sketch: Imprints::with_defaults(data),
        }
    }

    /// Number of compressed imprint runs (probe cost per query).
    pub fn num_runs(&self) -> usize {
        self.sketch.num_runs()
    }
}

impl<T: DataValue> SkippingIndex<T> for ColumnImprints<T> {
    fn name(&self) -> String {
        format!(
            "imprints({}x{})",
            self.sketch.values_per_line(),
            self.sketch.num_bins()
        )
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn prune(&mut self, pred: &RangePredicate<T>) -> PruneOutcome {
        let mut out = PruneOutcome::for_prune();
        out.zones_probed = self.sketch.num_runs();
        self.sketch
            .classify(pred.lo, pred.hi, |range, verdict| match verdict {
                RunVerdict::Skip => out.zones_skipped += 1,
                RunVerdict::FullMatch => out.full_match.push_span(range.start, range.end),
                RunVerdict::Scan => out.must_scan.push_span(range.start, range.end),
            });
        out
    }

    fn on_append(&mut self, _appended: &[T], base: &[T]) {
        // Bin boundaries stay fixed — imprints do not adapt to domain
        // drift, which E9 reports honestly.
        self.sketch.extend(base);
    }

    fn metadata_bytes(&self) -> usize {
        self.sketch.metadata_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_sound(imp: &mut ColumnImprints<i64>, data: &[i64], pred: RangePredicate<i64>) {
        let out = imp.prune(&pred);
        for (i, &v) in data.iter().enumerate() {
            if pred.matches(v) {
                assert!(
                    out.must_scan.contains(i) || out.full_match.contains(i),
                    "row {i} (value {v}) lost for {pred}"
                );
            }
        }
        // full_match ranges must contain only qualifying rows.
        for r in out.full_match.ranges() {
            for (i, &v) in data.iter().enumerate().take(r.end).skip(r.start) {
                assert!(pred.matches(v), "row {i} wrongly full-matched");
            }
        }
    }

    #[test]
    fn sound_on_sorted_data() {
        let data: Vec<i64> = (0..10_000).collect();
        let mut imp = ColumnImprints::with_defaults(&data);
        for lo in [0i64, 100, 5000, 9990] {
            check_sound(&mut imp, &data, RangePredicate::between(lo, lo + 500));
        }
    }

    #[test]
    fn sound_on_random_data() {
        let data: Vec<i64> = (0..8192).map(|i| (i * 2654435761i64) % 10_000).collect();
        let mut imp = ColumnImprints::build(&data, 8, 64);
        for q in 0..30 {
            let lo = (q * 331) % 9000;
            check_sound(&mut imp, &data, RangePredicate::between(lo, lo + 400));
        }
    }

    #[test]
    fn skips_on_clustered_data() {
        let mut data = vec![10i64; 4096];
        data.extend(vec![10_000i64; 4096]);
        let mut imp = ColumnImprints::with_defaults(&data);
        // With two distinct values the bins are (-inf,10), [10,10000),
        // [10000,inf): a predicate inside the top bin skips the low cluster.
        let out = imp.prune(&RangePredicate::between(10_000, 11_000));
        assert!(out.rows_to_scan() + out.rows_full_match() <= 4096 + 8);
        assert!(out.zones_skipped > 0);
        check_sound(&mut imp, &data, RangePredicate::between(9_000, 11_000));
    }

    #[test]
    fn rle_compresses_constant_regions() {
        let data = vec![7i64; 64 * 100];
        let imp = ColumnImprints::with_defaults(&data);
        assert_eq!(imp.num_runs(), 1);
    }

    #[test]
    fn full_match_on_interior_bins() {
        let data: Vec<i64> = (0..64_000).collect(); // sorted, wide domain
        let mut imp = ColumnImprints::with_defaults(&data);
        let out = imp.prune(&RangePredicate::between(10_000, 50_000));
        assert!(
            out.rows_full_match() > 0,
            "wide predicates over sorted data should full-match interior lines"
        );
    }

    #[test]
    fn append_keeps_soundness() {
        let mut data: Vec<i64> = (0..1000).collect();
        let mut imp = ColumnImprints::build(&data, 8, 32);
        for batch in 0..7 {
            let newvals: Vec<i64> = (0..37).map(|i| 1000 + batch * 37 + i).collect();
            data.extend_from_slice(&newvals);
            imp.on_append(&newvals, &data);
            check_sound(&mut imp, &data, RangePredicate::between(980, 1100));
            check_sound(&mut imp, &data, RangePredicate::between(0, 10));
        }
    }

    #[test]
    fn append_into_rle_run_splits_correctly() {
        let mut data = vec![5i64; 100];
        let mut imp = ColumnImprints::build(&data, 8, 16);
        assert_eq!(imp.num_runs(), 1);
        let newvals = vec![999_999i64; 20];
        data.extend_from_slice(&newvals);
        imp.on_append(&newvals, &data);
        check_sound(&mut imp, &data, RangePredicate::between(900_000, 1_000_000));
        check_sound(&mut imp, &data, RangePredicate::point(5));
    }

    #[test]
    fn constant_column_single_bin() {
        let data = vec![42i64; 500];
        let mut imp = ColumnImprints::build(&data, 8, 64);
        check_sound(&mut imp, &data, RangePredicate::point(42));
        // The single boundary sits at 42, so everything below it skips;
        // ranges above 42 share the constant's bin and cannot skip.
        let out = imp.prune(&RangePredicate::between(10, 20));
        assert_eq!(out.rows_to_scan() + out.rows_full_match(), 0);
    }

    #[test]
    fn name_and_metadata() {
        let imp = ColumnImprints::build(&(0..640i64).collect::<Vec<_>>(), 8, 64);
        assert!(SkippingIndex::name(&imp).starts_with("imprints"));
        assert!(SkippingIndex::metadata_bytes(&imp) > 0);
    }

    #[test]
    fn empty_column() {
        let mut imp = ColumnImprints::build(&[] as &[i64], 8, 8);
        let out = imp.prune(&RangePredicate::all());
        assert_eq!(out.rows_to_scan(), 0);
    }
}

//! # ads-baselines — comparison structures for the evaluation
//!
//! The structures adaptive zonemaps are measured against, all implementing
//! the [`ads_core::SkippingIndex`] framework trait:
//!
//! * [`FullScan`] — no skipping at all; the speedup denominator.
//! * [`StaticZonemap`](ads_core::StaticZonemap) — lives in `ads-core`; the
//!   classic fixed-granularity zonemap.
//! * [`ColumnImprints`] — cache-line bit sketches (Sidirourgos & Kersten,
//!   SIGMOD 2013), the main non-adaptive in-memory skipping alternative.
//! * [`CrackerColumn`] — database cracking (Idreos et al., CIDR 2007), the
//!   adaptive-indexing-by-reorganisation alternative.
//! * [`SortedOracle`] — a fully sorted projection; the upper bound.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cracking;
pub mod fullscan;
pub mod imprints;
pub mod sorted_oracle;

pub use cracking::CrackerColumn;
pub use fullscan::FullScan;
pub use imprints::ColumnImprints;
pub use sorted_oracle::SortedOracle;

//! The perfect-order oracle: a fully sorted projection.
//!
//! Upper bound for every skipping technique — what you would get if the
//! data had been fully indexed/sorted offline. Pays a full sort at build
//! time and a full re-sort on every append, which experiment E8/E9 report
//! honestly.

use ads_core::{PruneOutcome, RangePredicate, ScanCoords, SkippingIndex};
use ads_storage::{DataValue, RangeSet};

/// A sorted copy of the column plus the original row ids.
#[derive(Debug, Clone)]
pub struct SortedOracle<T: DataValue> {
    values: Vec<T>,
    rowids: Vec<u32>,
}

impl<T: DataValue> SortedOracle<T> {
    /// Sorts a copy of `data`.
    pub fn build(data: &[T]) -> Self {
        let mut pairs: Vec<(T, u32)> = data
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        pairs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        SortedOracle {
            values: pairs.iter().map(|&(v, _)| v).collect(),
            rowids: pairs.iter().map(|&(_, id)| id).collect(),
        }
    }

    /// First position whose value is `>= x` under the total order.
    fn lower_bound(&self, x: T) -> usize {
        self.values.partition_point(|v| v.lt_total(&x))
    }

    /// First position whose value is `> x` under the total order.
    fn upper_bound(&self, x: T) -> usize {
        self.values.partition_point(|v| v.le_total(&x))
    }
}

impl<T: DataValue> SkippingIndex<T> for SortedOracle<T> {
    fn name(&self) -> String {
        "sorted-oracle".to_string()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn prune(&mut self, pred: &RangePredicate<T>) -> PruneOutcome {
        let lo = self.lower_bound(pred.lo);
        let hi = self.upper_bound(pred.hi);
        let mut full_match = RangeSet::new();
        if lo < hi {
            full_match.push_span(lo, hi);
        }
        PruneOutcome {
            full_match,
            // Two binary searches; charge one logical probe each.
            zones_probed: 2,
            ..Default::default()
        }
    }

    fn on_append(&mut self, _appended: &[T], base: &[T]) {
        *self = SortedOracle::build(base);
    }

    fn metadata_bytes(&self) -> usize {
        self.rowids.capacity() * std::mem::size_of::<u32>()
    }

    fn data_copy_bytes(&self) -> usize {
        self.values.capacity() * std::mem::size_of::<T>()
    }

    fn scan_coords(&self) -> ScanCoords {
        ScanCoords::View
    }

    fn view(&self) -> Option<&[T]> {
        Some(&self.values)
    }

    fn translate_positions(&self, positions: &mut [u32]) {
        for p in positions.iter_mut() {
            *p = self.rowids[*p as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_exact_qualifying_region() {
        let data = vec![5i64, 1, 9, 3, 7, 3];
        let mut so = SortedOracle::build(&data);
        let out = so.prune(&RangePredicate::between(3, 7));
        // Sorted: 1 3 3 5 7 9 — region [1, 5).
        assert_eq!(out.rows_full_match(), 4);
        assert_eq!(out.rows_to_scan(), 0);
        assert_eq!(out.full_match.ranges()[0].start, 1);
    }

    #[test]
    fn empty_region_for_missing_values() {
        let data = vec![10i64, 20, 30];
        let mut so = SortedOracle::build(&data);
        let out = so.prune(&RangePredicate::between(11, 19));
        assert!(out.full_match.is_empty());
    }

    #[test]
    fn positions_translate_to_base_rowids() {
        let data = vec![5i64, 1, 9];
        let so = SortedOracle::build(&data);
        // view: [1, 5, 9] from rows [1, 0, 2]
        let mut pos = vec![0u32, 1, 2];
        so.translate_positions(&mut pos);
        assert_eq!(pos, vec![1, 0, 2]);
    }

    #[test]
    fn append_resorts() {
        let mut data = vec![5i64, 1];
        let mut so = SortedOracle::build(&data);
        data.push(3);
        so.on_append(&data[2..], &data);
        let out = so.prune(&RangePredicate::between(1, 3));
        assert_eq!(out.rows_full_match(), 2);
    }

    #[test]
    fn view_is_sorted() {
        let so = SortedOracle::build(&[3i64, 1, 2]);
        assert_eq!(SkippingIndex::view(&so), Some(&[1i64, 2, 3][..]));
        assert_eq!(SkippingIndex::scan_coords(&so), ScanCoords::View);
        assert!(SkippingIndex::data_copy_bytes(&so) >= 24);
    }

    #[test]
    fn duplicates_and_bounds_inclusive() {
        let data = vec![2i64, 2, 2, 2];
        let mut so = SortedOracle::build(&data);
        assert_eq!(so.prune(&RangePredicate::point(2)).rows_full_match(), 4);
        assert_eq!(
            so.prune(&RangePredicate::between(3, 9)).rows_full_match(),
            0
        );
    }
}

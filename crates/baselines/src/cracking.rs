//! Database cracking (Idreos, Kersten & Manegold, CIDR 2007): adaptive
//! indexing by physical reorganisation.
//!
//! Cracking is the adaptive-indexing ancestor of adaptive data skipping:
//! instead of maintaining metadata *about* the data order, it incrementally
//! *creates* order. Each range query partitions a copy of the column
//! ("cracker column") around its predicate bounds, so the qualifying values
//! of any previously-seen bound sit in a contiguous piece. Answers come
//! straight from the cracker column (view coordinates); original row ids
//! travel alongside for position reconstruction.
//!
//! Appends use the simple tail scheme: new rows accumulate uncracked at the
//! end and are scanned; once the tail outgrows a threshold the cracker
//! index is rebuilt from scratch (the literature's merge-based update
//! algorithms are out of scope). Experiment E9 shows the resulting
//! degradation honestly.

use ads_core::{PruneOutcome, RangePredicate, ScanCoords, SkippingIndex};
use ads_storage::{DataValue, RangeSet};
use std::cmp::Ordering;

/// A piece boundary: the prefix `[0, pos)` of the cracked region holds
/// exactly the values `v` with `v < key` (or `v <= key` when `inclusive`).
#[derive(Debug, Clone, Copy)]
struct CrackBound<T: DataValue> {
    key: T,
    inclusive: bool,
    pos: usize,
}

impl<T: DataValue> CrackBound<T> {
    /// Predicate order: ascending selectivity-set inclusion
    /// (`v < k` ⊂ `v <= k` ⊂ `v < k'` for `k < k'`).
    fn cmp_pred(&self, key: &T, inclusive: bool) -> Ordering {
        self.key.total_cmp(key).then(self.inclusive.cmp(&inclusive))
    }

    fn matches(&self, v: &T) -> bool {
        match v.total_cmp(&self.key) {
            Ordering::Less => true,
            Ordering::Equal => self.inclusive,
            Ordering::Greater => false,
        }
    }
}

/// A cracker column with its cracker index.
#[derive(Debug, Clone)]
pub struct CrackerColumn<T: DataValue> {
    values: Vec<T>,
    rowids: Vec<u32>,
    bounds: Vec<CrackBound<T>>,
    /// Prefix length the bounds describe; `[cracked_len, len)` is the
    /// uncracked append tail.
    cracked_len: usize,
    /// Tail fraction that triggers an index rebuild.
    tail_rebuild_fraction: f64,
    partitions_done: u64,
}

impl<T: DataValue> CrackerColumn<T> {
    /// Copies `data` into a fresh cracker column.
    pub fn build(data: &[T]) -> Self {
        CrackerColumn {
            values: data.to_vec(),
            rowids: (0..data.len() as u32).collect(),
            bounds: Vec::new(),
            cracked_len: data.len(),
            tail_rebuild_fraction: 0.1,
            partitions_done: 0,
        }
    }

    /// Number of pieces the cracked region is currently divided into.
    pub fn num_pieces(&self) -> usize {
        self.bounds.len() + 1
    }

    /// Total partition (crack) operations performed.
    pub fn partitions_done(&self) -> u64 {
        self.partitions_done
    }

    /// Ensures a piece boundary exists for the predicate `(key, inclusive)`
    /// and returns its position. At most one Hoare partition of one
    /// existing piece.
    fn ensure_bound(&mut self, key: T, inclusive: bool) -> usize {
        match self
            .bounds
            .binary_search_by(|b| b.cmp_pred(&key, inclusive))
        {
            Ok(i) => self.bounds[i].pos,
            Err(i) => {
                let seg_start = if i == 0 { 0 } else { self.bounds[i - 1].pos };
                let seg_end = if i == self.bounds.len() {
                    self.cracked_len
                } else {
                    self.bounds[i].pos
                };
                let bound = CrackBound {
                    key,
                    inclusive,
                    pos: 0,
                };
                let pos = self.partition(seg_start, seg_end, &bound);
                self.bounds.insert(
                    i,
                    CrackBound {
                        key,
                        inclusive,
                        pos,
                    },
                );
                pos
            }
        }
    }

    /// In-place Hoare partition of `[start, end)` by `bound`; returns the
    /// split point. Row ids move with their values.
    fn partition(&mut self, start: usize, end: usize, bound: &CrackBound<T>) -> usize {
        self.partitions_done += 1;
        let mut i = start;
        let mut j = end;
        while i < j {
            if bound.matches(&self.values[i]) {
                i += 1;
            } else {
                j -= 1;
                self.values.swap(i, j);
                self.rowids.swap(i, j);
            }
        }
        i
    }

    /// Folds the uncracked tail in by dropping the cracker index; the next
    /// queries re-crack from scratch over the full column.
    fn rebuild_including_tail(&mut self) {
        self.bounds.clear();
        self.cracked_len = self.values.len();
    }

    fn tail_len(&self) -> usize {
        self.values.len() - self.cracked_len
    }
}

impl<T: DataValue> SkippingIndex<T> for CrackerColumn<T> {
    fn name(&self) -> String {
        "cracking".to_string()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn prune(&mut self, pred: &RangePredicate<T>) -> PruneOutcome {
        if self.tail_len() as f64 > self.tail_rebuild_fraction * self.values.len().max(1) as f64 {
            self.rebuild_including_tail();
        }
        // Piece [pos_lo, pos_hi) holds exactly the v with lo <= v <= hi.
        let pos_lo = self.ensure_bound(pred.lo, false);
        let pos_hi = self.ensure_bound(pred.hi, true);
        debug_assert!(pos_lo <= pos_hi);

        let mut full_match = RangeSet::new();
        if pos_lo < pos_hi {
            full_match.push_span(pos_lo, pos_hi);
        }
        let mut must_scan = RangeSet::new();
        if self.cracked_len < self.values.len() {
            must_scan.push_span(self.cracked_len, self.values.len());
        }
        PruneOutcome {
            must_scan,
            full_match,
            zones_probed: 2, // two cracker-index lookups
            ..Default::default()
        }
    }

    fn on_append(&mut self, appended: &[T], base: &[T]) {
        let old = self.values.len();
        debug_assert_eq!(old + appended.len(), base.len());
        self.values.extend_from_slice(appended);
        self.rowids.extend(old as u32..base.len() as u32);
    }

    fn metadata_bytes(&self) -> usize {
        self.bounds.capacity() * std::mem::size_of::<CrackBound<T>>()
            + self.rowids.capacity() * std::mem::size_of::<u32>()
    }

    fn data_copy_bytes(&self) -> usize {
        self.values.capacity() * std::mem::size_of::<T>()
    }

    fn scan_coords(&self) -> ScanCoords {
        ScanCoords::View
    }

    fn view(&self) -> Option<&[T]> {
        Some(&self.values)
    }

    fn translate_positions(&self, positions: &mut [u32]) {
        for p in positions.iter_mut() {
            *p = self.rowids[*p as usize];
        }
    }

    fn adapt_events(&self) -> u64 {
        self.partitions_done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(data: &[i64], pred: &RangePredicate<i64>) -> usize {
        data.iter().filter(|&&v| pred.matches(v)).count()
    }

    /// Runs a query and returns the count, scanning the tail if present.
    fn run_count(cc: &mut CrackerColumn<i64>, pred: RangePredicate<i64>) -> usize {
        let out = cc.prune(&pred);
        let view = SkippingIndex::view(cc)
            .expect("cracker has a view")
            .to_vec();
        let mut count = out.rows_full_match();
        for r in out.must_scan.ranges() {
            count += ads_storage::scan::count_in_range(&view[r.start..r.end], pred.lo, pred.hi);
        }
        count
    }

    #[test]
    fn counts_match_oracle_over_query_sequence() {
        let data: Vec<i64> = (0..5000).map(|i| (i * 2654435761i64) % 1000).collect();
        let mut cc = CrackerColumn::build(&data);
        for q in 0..50 {
            let lo = (q * 37) % 900;
            let pred = RangePredicate::between(lo, lo + 60);
            assert_eq!(run_count(&mut cc, pred), oracle(&data, &pred), "query {q}");
        }
    }

    #[test]
    fn cracker_column_stays_a_permutation() {
        let data: Vec<i64> = (0..2000).map(|i| (i * 7919) % 500).collect();
        let mut cc = CrackerColumn::build(&data);
        for q in 0..30 {
            let lo = (q * 13) % 400;
            run_count(&mut cc, RangePredicate::between(lo, lo + 25));
        }
        let mut sorted_orig = data.clone();
        sorted_orig.sort_unstable();
        let mut sorted_cracked = cc.values.clone();
        sorted_cracked.sort_unstable();
        assert_eq!(sorted_orig, sorted_cracked);
        // Row ids still map view values back to base values.
        for (i, &v) in cc.values.iter().enumerate() {
            assert_eq!(data[cc.rowids[i] as usize], v);
        }
    }

    #[test]
    fn pieces_respect_bounds() {
        let data: Vec<i64> = (0..1000).rev().collect();
        let mut cc = CrackerColumn::build(&data);
        run_count(&mut cc, RangePredicate::between(200, 300));
        run_count(&mut cc, RangePredicate::between(600, 800));
        for b in &cc.bounds {
            for i in 0..b.pos {
                assert!(b.matches(&cc.values[i]), "prefix property broken at {i}");
            }
            for i in b.pos..cc.cracked_len {
                assert!(!b.matches(&cc.values[i]), "suffix property broken at {i}");
            }
        }
    }

    #[test]
    fn repeated_bounds_do_no_new_work() {
        let data: Vec<i64> = (0..4000).map(|i| (i * 31) % 2000).collect();
        let mut cc = CrackerColumn::build(&data);
        let pred = RangePredicate::between(500, 700);
        run_count(&mut cc, pred);
        let after_first = cc.partitions_done();
        run_count(&mut cc, pred);
        assert_eq!(cc.partitions_done(), after_first);
    }

    #[test]
    fn positions_translate_to_base_rowids() {
        let data = vec![30i64, 10, 20];
        let mut cc = CrackerColumn::build(&data);
        let pred = RangePredicate::between(10, 20);
        let out = cc.prune(&pred);
        let r = out.full_match.ranges()[0];
        let mut pos: Vec<u32> = (r.start as u32..r.end as u32).collect();
        cc.translate_positions(&mut pos);
        pos.sort_unstable();
        assert_eq!(pos, vec![1, 2]);
    }

    #[test]
    fn appends_scan_tail_until_rebuild() {
        let mut data: Vec<i64> = (0..1000).collect();
        let mut cc = CrackerColumn::build(&data);
        run_count(&mut cc, RangePredicate::between(100, 200));
        // Small append: tail under threshold, scanned directly.
        let new1: Vec<i64> = (1000..1050).collect();
        data.extend_from_slice(&new1);
        cc.on_append(&new1, &data);
        let pred = RangePredicate::between(990, 1040);
        assert_eq!(run_count(&mut cc, pred), oracle(&data, &pred));
        // Large append: exceeds 10% tail, forces rebuild.
        let new2: Vec<i64> = (1050..1500).collect();
        data.extend_from_slice(&new2);
        cc.on_append(&new2, &data);
        let pred2 = RangePredicate::between(1200, 1400);
        assert_eq!(run_count(&mut cc, pred2), oracle(&data, &pred2));
        assert_eq!(cc.tail_len(), 0, "rebuild folds the tail in");
    }

    #[test]
    fn point_queries_and_duplicates() {
        let data = vec![5i64, 5, 5, 3, 7, 5];
        let mut cc = CrackerColumn::build(&data);
        assert_eq!(run_count(&mut cc, RangePredicate::point(5)), 4);
        assert_eq!(run_count(&mut cc, RangePredicate::point(4)), 0);
        assert_eq!(run_count(&mut cc, RangePredicate::between(3, 7)), 6);
    }

    #[test]
    fn empty_column() {
        let mut cc = CrackerColumn::build(&[] as &[i64]);
        assert_eq!(run_count(&mut cc, RangePredicate::all()), 0);
    }

    #[test]
    fn works_with_floats() {
        let data = vec![0.5f64, -1.0, 2.5, f64::NAN, 1.5];
        let mut cc = CrackerColumn::build(&data);
        let pred = RangePredicate::between(0.0, 2.0);
        let out = cc.prune(&pred);
        assert_eq!(out.rows_full_match(), 2); // 0.5 and 1.5
    }
}

//! Prune-only cost: the metadata-read bill per query, per structure.
//!
//! This is the "extra cost of metadata reads" the abstract warns about,
//! isolated from scanning. Uniform data maximises it (no early skips).

use ads_bench::microbench::{bench, black_box, section};
use ads_core::adaptive::{AdaptiveConfig, AdaptiveZonemap};
use ads_core::{RangePredicate, SkippingIndex, StaticZonemap};
use ads_engine::{execute, AggKind};
use ads_workloads::data;

const N: usize = 1 << 22;

fn bench_static_prune() {
    let values = data::uniform(N, 1_000_000, 3);
    section("prune_static_zonemap_uniform");
    for zone_rows in [256usize, 1024, 4096, 16384] {
        let mut zm = StaticZonemap::build(&values, zone_rows);
        let pred = RangePredicate::between(100_000, 110_000);
        bench(&format!("zone_rows={zone_rows}"), || {
            black_box(zm.prune(black_box(&pred)))
        });
    }
}

fn bench_sorted_prune() {
    // Sorted data: same probe count, but most zones skip.
    let values = data::sorted(N, 1_000_000);
    section("prune_static_zonemap_sorted");
    for zone_rows in [1024usize, 4096] {
        let mut zm = StaticZonemap::build(&values, zone_rows);
        let pred = RangePredicate::between(100_000, 110_000);
        bench(&format!("zone_rows={zone_rows}"), || {
            black_box(zm.prune(black_box(&pred)))
        });
    }
}

fn bench_adaptive_prune_after_convergence() {
    // Converge the adaptive zonemap first, then measure the residual
    // per-query prune cost (should approach a handful of extent checks).
    section("prune_adaptive_converged");
    let pred = RangePredicate::between(100_000, 110_000);

    let values = data::uniform(N, 1_000_000, 5);
    let mut zm = AdaptiveZonemap::new(N, AdaptiveConfig::default());
    for q in 0..400 {
        let lo = (q * 7919) % 900_000;
        let p = RangePredicate::between(lo, lo + 10_000);
        let _ = execute(&values, &mut zm, p, AggKind::Count);
    }
    bench("uniform", || black_box(zm.prune(black_box(&pred))));

    let sorted = data::sorted(N, 1_000_000);
    let mut zm2 = AdaptiveZonemap::new(N, AdaptiveConfig::default());
    for q in 0..400 {
        let lo = (q * 7919) % 900_000;
        let p = RangePredicate::between(lo, lo + 10_000);
        let _ = execute(&sorted, &mut zm2, p, AggKind::Count);
    }
    bench("sorted", || black_box(zm2.prune(black_box(&pred))));
}

fn bench_imprints_prune() {
    let values = data::uniform(N, 1_000_000, 9);
    let mut imp = ads_baselines::ColumnImprints::build(&values, 8, 64);
    let pred = RangePredicate::between(100_000, 110_000);
    section("prune_imprints");
    bench("uniform", || black_box(imp.prune(black_box(&pred))));
}

fn main() {
    bench_static_prune();
    bench_sorted_prune();
    bench_adaptive_prune_after_convergence();
    bench_imprints_prune();
}

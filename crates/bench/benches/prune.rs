//! Prune-only cost: the metadata-read bill per query, per structure.
//!
//! This is the "extra cost of metadata reads" the abstract warns about,
//! isolated from scanning. Uniform data maximises it (no early skips).

use ads_core::adaptive::{AdaptiveConfig, AdaptiveZonemap};
use ads_core::{RangePredicate, SkippingIndex, StaticZonemap};
use ads_engine::{execute, AggKind};
use ads_workloads::data;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const N: usize = 1 << 22;

fn bench_static_prune(c: &mut Criterion) {
    let values = data::uniform(N, 1_000_000, 3);
    let mut group = c.benchmark_group("prune_static_zonemap_uniform");
    for zone_rows in [256usize, 1024, 4096, 16384] {
        let mut zm = StaticZonemap::build(&values, zone_rows);
        let pred = RangePredicate::between(100_000, 110_000);
        group.bench_with_input(
            BenchmarkId::from_parameter(zone_rows),
            &zone_rows,
            |b, _| b.iter(|| black_box(zm.prune(black_box(&pred)))),
        );
    }
    group.finish();
}

fn bench_sorted_prune(c: &mut Criterion) {
    // Sorted data: same probe count, but most zones skip.
    let values = data::sorted(N, 1_000_000);
    let mut group = c.benchmark_group("prune_static_zonemap_sorted");
    for zone_rows in [1024usize, 4096] {
        let mut zm = StaticZonemap::build(&values, zone_rows);
        let pred = RangePredicate::between(100_000, 110_000);
        group.bench_with_input(
            BenchmarkId::from_parameter(zone_rows),
            &zone_rows,
            |b, _| b.iter(|| black_box(zm.prune(black_box(&pred)))),
        );
    }
    group.finish();
}

fn bench_adaptive_prune_after_convergence(c: &mut Criterion) {
    // Converge the adaptive zonemap on uniform data first, then measure
    // the residual per-query prune cost (should approach a handful of
    // dead-extent checks).
    let values = data::uniform(N, 1_000_000, 5);
    let mut zm = AdaptiveZonemap::new(N, AdaptiveConfig::default());
    for q in 0..400 {
        let lo = (q * 7919) % 900_000;
        let pred = RangePredicate::between(lo, lo + 10_000);
        let _ = execute(&values, &mut zm, pred, AggKind::Count);
    }
    let pred = RangePredicate::between(100_000, 110_000);
    c.bench_function("prune_adaptive_converged_uniform", |b| {
        b.iter(|| black_box(zm.prune(black_box(&pred))))
    });

    let sorted = data::sorted(N, 1_000_000);
    let mut zm2 = AdaptiveZonemap::new(N, AdaptiveConfig::default());
    for q in 0..400 {
        let lo = (q * 7919) % 900_000;
        let p = RangePredicate::between(lo, lo + 10_000);
        let _ = execute(&sorted, &mut zm2, p, AggKind::Count);
    }
    c.bench_function("prune_adaptive_converged_sorted", |b| {
        b.iter(|| black_box(zm2.prune(black_box(&pred))))
    });
}

fn bench_imprints_prune(c: &mut Criterion) {
    let values = data::uniform(N, 1_000_000, 9);
    let mut imp = ads_baselines::ColumnImprints::build(&values, 8, 64);
    let pred = RangePredicate::between(100_000, 110_000);
    c.bench_function("prune_imprints_uniform", |b| {
        b.iter(|| black_box(imp.prune(black_box(&pred))))
    });
}

criterion_group!(
    benches,
    bench_static_prune,
    bench_sorted_prune,
    bench_adaptive_prune_after_convergence,
    bench_imprints_prune
);
criterion_main!(benches);

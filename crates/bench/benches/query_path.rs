//! End-to-end query cost on converged indexes: what a steady-state query
//! pays under each strategy, per distribution.

use ads_core::RangePredicate;
use ads_engine::{execute, AggKind, Strategy};
use ads_workloads::{DataSpec, QuerySpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const N: usize = 1 << 21;
const DOMAIN: i64 = 1_000_000;

fn bench_steady_state(c: &mut Criterion) {
    for spec in [DataSpec::Sorted, DataSpec::Uniform, DataSpec::MixedRegions] {
        let values = spec.generate(N, DOMAIN, 11);
        let warmup = QuerySpec::UniformRandom { selectivity: 0.01 }.generate(300, DOMAIN, 12);
        let mut group = c.benchmark_group(format!("steady_query_{}", spec.label()));
        group.sample_size(20);
        for strategy in Strategy::roster() {
            let mut index = strategy.build_index(&values);
            // Converge adaptive structures before measuring.
            for q in &warmup {
                let _ = execute(
                    &values,
                    index.as_mut(),
                    RangePredicate::between(q.lo, q.hi),
                    AggKind::Count,
                );
            }
            let pred = RangePredicate::between(421_000, 431_000);
            group.bench_with_input(
                BenchmarkId::from_parameter(strategy.label()),
                &strategy,
                |b, _| {
                    b.iter(|| {
                        black_box(execute(
                            black_box(&values),
                            index.as_mut(),
                            pred,
                            AggKind::Count,
                        ))
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_steady_state);
criterion_main!(benches);

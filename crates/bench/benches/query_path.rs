//! End-to-end query cost on converged indexes: what a steady-state query
//! pays under each strategy, per distribution.

use ads_bench::microbench::{bench, black_box, section};
use ads_core::RangePredicate;
use ads_engine::{execute, AggKind, Strategy};
use ads_workloads::{DataSpec, QuerySpec};

const N: usize = 1 << 21;
const DOMAIN: i64 = 1_000_000;

fn bench_steady_state() {
    for spec in [DataSpec::Sorted, DataSpec::Uniform, DataSpec::MixedRegions] {
        let values = spec.generate(N, DOMAIN, 11);
        let warmup = QuerySpec::UniformRandom { selectivity: 0.01 }.generate(300, DOMAIN, 12);
        section(&format!("steady_query_{}", spec.label()));
        for strategy in Strategy::roster() {
            let mut index = strategy.build_index(&values);
            // Converge adaptive structures before measuring.
            for q in &warmup {
                let _ = execute(
                    &values,
                    index.as_mut(),
                    RangePredicate::between(q.lo, q.hi),
                    AggKind::Count,
                );
            }
            let pred = RangePredicate::between(421_000, 431_000);
            bench(&strategy.label(), || {
                black_box(execute(
                    black_box(&values),
                    index.as_mut(),
                    pred,
                    AggKind::Count,
                ))
            });
        }
    }
}

fn main() {
    bench_steady_state();
}

//! Cost of the adaptive operations themselves: crack partitions, zonemap
//! construction, and the first (investment-paying) queries of adaptive
//! structures.

use ads_baselines::CrackerColumn;
use ads_core::adaptive::{AdaptiveConfig, AdaptiveZonemap};
use ads_core::{RangePredicate, SkippingIndex, StaticZonemap};
use ads_engine::{execute, AggKind};
use ads_workloads::data;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

const N: usize = 1 << 20;

fn bench_build_costs(c: &mut Criterion) {
    let values = data::uniform(N, 1_000_000, 3);
    let mut group = c.benchmark_group("index_build");
    group.sample_size(20);
    group.bench_function("static_zonemap_4096", |b| {
        b.iter(|| black_box(StaticZonemap::build(black_box(&values), 4096)))
    });
    group.bench_function("adaptive_zonemap", |b| {
        b.iter(|| black_box(AdaptiveZonemap::<i64>::new(N, AdaptiveConfig::default())))
    });
    group.bench_function("imprints_8x64", |b| {
        b.iter(|| black_box(ads_baselines::ColumnImprints::build(black_box(&values), 8, 64)))
    });
    group.bench_function("cracker_copy", |b| {
        b.iter(|| black_box(CrackerColumn::build(black_box(&values))))
    });
    group.finish();
}

fn bench_first_crack(c: &mut Criterion) {
    // The first crack of a fresh column: one full-array partition.
    let values = data::uniform(N, 1_000_000, 5);
    c.bench_function("crack_first_query", |b| {
        b.iter_batched(
            || CrackerColumn::build(&values),
            |mut cc| {
                black_box(cc.prune(&RangePredicate::between(400_000, 500_000)));
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_adaptive_first_queries(c: &mut Criterion) {
    // The adaptive zonemap's investment: the first query (full scan +
    // metadata build as by-product) vs a plain scan.
    let values = data::almost_sorted(N, 1_000_000, 0.05, 256, 7);
    let mut group = c.benchmark_group("adaptive_investment");
    group.sample_size(20);
    group.bench_function("first_query", |b| {
        b.iter_batched(
            || AdaptiveZonemap::<i64>::new(N, AdaptiveConfig::default()),
            |mut zm| {
                black_box(execute(
                    &values,
                    &mut zm,
                    RangePredicate::between(400_000, 410_000),
                    AggKind::Count,
                ));
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("plain_scan_reference", |b| {
        b.iter(|| {
            black_box(ads_storage::scan::count_in_range(
                black_box(&values),
                400_000,
                410_000,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_build_costs,
    bench_first_crack,
    bench_adaptive_first_queries
);
criterion_main!(benches);

//! Cost of the adaptive operations themselves: crack partitions, zonemap
//! construction, and the first (investment-paying) queries of adaptive
//! structures.

use ads_baselines::CrackerColumn;
use ads_bench::microbench::{bench, bench_with_setup, black_box, section};
use ads_core::adaptive::{AdaptiveConfig, AdaptiveZonemap};
use ads_core::{RangePredicate, SkippingIndex, StaticZonemap};
use ads_engine::{execute, AggKind};
use ads_workloads::data;

const N: usize = 1 << 20;

fn bench_build_costs() {
    let values = data::uniform(N, 1_000_000, 3);
    section("index_build");
    bench("static_zonemap_4096", || {
        black_box(StaticZonemap::build(black_box(&values), 4096))
    });
    bench("adaptive_zonemap", || {
        black_box(AdaptiveZonemap::<i64>::new(N, AdaptiveConfig::default()))
    });
    bench("imprints_8x64", || {
        black_box(ads_baselines::ColumnImprints::build(
            black_box(&values),
            8,
            64,
        ))
    });
    bench("cracker_copy", || {
        black_box(CrackerColumn::build(black_box(&values)))
    });
}

fn bench_first_crack() {
    // The first crack of a fresh column: one full-array partition.
    let values = data::uniform(N, 1_000_000, 5);
    section("first_crack");
    bench_with_setup(
        "crack_first_query",
        || CrackerColumn::build(&values),
        |mut cc| {
            black_box(cc.prune(&RangePredicate::between(400_000, 500_000)));
        },
    );
}

fn bench_adaptive_first_queries() {
    // The adaptive zonemap's investment: the first query (full scan +
    // metadata build as by-product) vs a plain scan.
    let values = data::almost_sorted(N, 1_000_000, 0.05, 256, 7);
    section("adaptive_investment");
    bench_with_setup(
        "first_query",
        || AdaptiveZonemap::<i64>::new(N, AdaptiveConfig::default()),
        |mut zm| {
            black_box(execute(
                &values,
                &mut zm,
                RangePredicate::between(400_000, 410_000),
                AggKind::Count,
            ));
        },
    );
    bench("plain_scan_reference", || {
        black_box(ads_storage::scan::count_in_range(
            black_box(&values),
            400_000,
            410_000,
        ))
    });
}

fn main() {
    bench_build_costs();
    bench_first_crack();
    bench_adaptive_first_queries();
}

//! Microbenches for the storage scan kernels: the per-tuple costs the
//! cost model's `probe_cost_tuples` ratio is measured against.

use ads_storage::scan;
use ads_workloads::data;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const N: usize = 1 << 20;

fn bench_kernels(c: &mut Criterion) {
    let values = data::uniform(N, 1_000_000, 7);
    let mut group = c.benchmark_group("scan_kernels");
    group.throughput(Throughput::Elements(N as u64));

    group.bench_function("count_in_range", |b| {
        b.iter(|| scan::count_in_range(black_box(&values), 100_000, 200_000))
    });
    group.bench_function("count_in_range_with_minmax", |b| {
        b.iter(|| scan::count_in_range_with_minmax(black_box(&values), 100_000, 200_000))
    });
    group.bench_function("sum_in_range", |b| {
        b.iter(|| scan::sum_in_range(black_box(&values), 100_000, 200_000))
    });
    group.bench_function("aggregate_in_range", |b| {
        b.iter(|| scan::aggregate_in_range(black_box(&values), 100_000, 200_000))
    });
    group.bench_function("min_max", |b| b.iter(|| scan::min_max(black_box(&values))));
    group.finish();
}

fn bench_selectivity_independence(c: &mut Criterion) {
    // Branchless kernels should cost the same regardless of hit rate.
    let values = data::uniform(N, 1_000_000, 7);
    let mut group = c.benchmark_group("count_by_selectivity");
    group.throughput(Throughput::Elements(N as u64));
    for sel_pct in [0u64, 1, 10, 50, 100] {
        let hi = (1_000_000 * sel_pct / 100) as i64;
        group.bench_with_input(BenchmarkId::from_parameter(sel_pct), &hi, |b, &hi| {
            b.iter(|| scan::count_in_range(black_box(&values), 0, hi))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_selectivity_independence);
criterion_main!(benches);

//! Microbenches for the storage scan kernels: the per-tuple costs the
//! cost model's `probe_cost_tuples` ratio is measured against.

use ads_bench::microbench::{bench, black_box, section};
use ads_storage::{parallel, scan};
use ads_workloads::data;

const N: usize = 1 << 20;

fn bench_kernels(values: &[i64]) {
    section(&format!("scan_kernels ({N} elements/iter)"));
    bench("count_in_range", || {
        scan::count_in_range(black_box(values), 100_000, 200_000)
    });
    bench("count_in_range_with_minmax", || {
        scan::count_in_range_with_minmax(black_box(values), 100_000, 200_000)
    });
    bench("sum_in_range", || {
        scan::sum_in_range(black_box(values), 100_000, 200_000)
    });
    bench("sum_all", || scan::sum_all(black_box(values)));
    bench("aggregate_in_range", || {
        scan::aggregate_in_range(black_box(values), 100_000, 200_000)
    });
    bench("min_max", || scan::min_max(black_box(values)));
}

fn bench_selectivity_independence(values: &[i64]) {
    // Branchless kernels should cost the same regardless of hit rate.
    section("count_by_selectivity");
    for sel_pct in [0u64, 1, 10, 50, 100] {
        let hi = (1_000_000 * sel_pct / 100) as i64;
        bench(&format!("count_in_range sel={sel_pct}%"), || {
            scan::count_in_range(black_box(values), 0, hi)
        });
    }
}

fn bench_parallel_kernels(values: &[i64]) {
    // The parallel driver vs its sequential baseline; on a single core
    // this shows the fan-out overhead instead of a speedup.
    section("parallel count_in_range");
    for threads in [1usize, 2, 4] {
        bench(&format!("par_count_in_range t={threads}"), || {
            parallel::par_count_in_range(black_box(values), 100_000, 200_000, threads)
        });
    }
}

fn main() {
    let values = data::uniform(N, 1_000_000, 7);
    bench_kernels(&values);
    bench_selectivity_independence(&values);
    bench_parallel_kernels(&values);
}

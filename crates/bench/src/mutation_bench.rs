//! E20 machinery — query throughput over a mutating store, emitted as
//! the machine-readable `ads-mutation-bench/v1` document
//! (`results/BENCH_mutations.json`).
//!
//! Three churn scenarios × {frozen, adaptive} × mutation rates, over
//! sorted data (the case where skipping can win, so frozen-vs-adaptive
//! is a real comparison rather than two full scans):
//!
//! * **update-hotspot** — a hotspot query workload over a store churned
//!   by out-of-place updates (tombstone + tail append).
//! * **delete-storm** — uniform queries over a store losing rows to a
//!   sustained stream of deletes.
//! * **moving-hotspot-over-churn** — a shifting hotspot workload over
//!   mixed update/delete churn with periodic bulk appends.
//!
//! The driver is a single closed loop: every query blocks for its
//! answer, every mutation batch blocks for its publication ack, so each
//! query observes exactly the mutations issued before it. A naive
//! mirror model (plain `Vec` + tombstone flags) recomputes every answer
//! and every batch's applied count; the cell **asserts** equality —
//! count, bit-pattern of the f64 sum, min, max — on every single query,
//! then folds the answers into a checksum that must agree across modes,
//! shard counts, and reader counts. After the timed loop the cell
//! compacts, mirrors the compaction in the model, and re-verifies: value
//! aggregates must not change when tombstones are physically reclaimed.
//!
//! Sums stay bit-identical across prune decisions because every partial
//! sum of in-domain i64 values is an exact integer far below 2^53;
//! addition order cannot perturb them.

use ads_core::RangePredicate;
use ads_engine::AggKind;
use ads_rng::StdRng;
use ads_server::{AdaptationMode, Mutation, QueryService, ServerConfig, ServerStats};
use ads_workloads::queries::RangeQuery;
use ads_workloads::{queries, DataSpec};
use std::fmt::Write;
use std::time::Instant;

/// The benchmarked churn scenarios.
pub const SCENARIOS: &[&str] = &[
    "update-hotspot",
    "delete-storm",
    "moving-hotspot-over-churn",
];

/// Mutations issued after each query.
pub const RATES: &[usize] = &[1, 8];

/// The (mode, shards, readers) grid each (scenario, rate) runs over.
/// Frozen and adaptive appear at matched shapes so speedups compare
/// like with like; the two shapes double as the cross-shard and
/// cross-thread checksum witnesses.
pub const CONFIGS: &[(AdaptationMode, usize, usize)] = &[
    (AdaptationMode::Frozen, 1, 1),
    (AdaptationMode::Frozen, 4, 4),
    (AdaptationMode::Async, 1, 1),
    (AdaptationMode::Async, 4, 4),
];

/// One measured (scenario, mode, shards, readers, rate) cell.
#[derive(Debug, Clone)]
pub struct MutationCell {
    /// Scenario label (see [`SCENARIOS`]).
    pub scenario: &'static str,
    /// Adaptation mode label.
    pub mode: &'static str,
    /// Shards of the store.
    pub shards: usize,
    /// Reader threads of the service.
    pub readers: usize,
    /// Mutations issued after each query.
    pub rate: usize,
    /// Queries answered in the timed loop.
    pub queries: u64,
    /// Mutations that took effect (no-ops on dead rows excluded).
    pub mutations_applied: u64,
    /// Wall time of the timed query+mutation loop.
    pub elapsed_ns: u64,
    /// Queries per second through the mutating store.
    pub qps: f64,
    /// Fold of every verified answer; equal across configs of one
    /// (scenario, rate) by construction — asserted by [`run`].
    pub checksum: u64,
    /// Rows reclaimed by the end-of-cell compaction.
    pub rows_reclaimed: u64,
    /// Tombstone density (ppm) just before that compaction.
    pub tombstone_ppm: u64,
}

/// The full E20 result set.
#[derive(Debug, Clone)]
pub struct MutationBenchReport {
    /// Rows per column at load.
    pub rows: usize,
    /// Queries per cell.
    pub queries_per_cell: usize,
    /// Host cores (context for the scaling numbers).
    pub host_cores: usize,
    /// Measured cells, in [`SCENARIOS`] × [`RATES`] × [`CONFIGS`] order.
    pub cells: Vec<MutationCell>,
}

impl MutationBenchReport {
    /// Throughput of a cell, or `None` if it was not measured.
    pub fn qps_of(&self, scenario: &str, mode: &str, shards: usize, rate: usize) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| {
                c.scenario == scenario && c.mode == mode && c.shards == shards && c.rate == rate
            })
            .map(|c| c.qps)
    }

    /// The headline acceptance check: on the update-hotspot scenario the
    /// adaptive service out-runs frozen on at least one matched
    /// (shards, rate) shape.
    pub fn adaptive_beats_frozen_on_update_hotspot(&self) -> bool {
        RATES.iter().any(|&rate| {
            [1usize, 4].iter().any(|&shards| {
                match (
                    self.qps_of("update-hotspot", "async", shards, rate),
                    self.qps_of("update-hotspot", "frozen", shards, rate),
                ) {
                    (Some(a), Some(f)) => a > f,
                    _ => false,
                }
            })
        })
    }

    /// Renders the `ads-mutation-bench/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str("  \"schema\": \"ads-mutation-bench/v1\",\n");
        let _ = writeln!(s, "  \"rows\": {},", self.rows);
        let _ = writeln!(s, "  \"queries_per_cell\": {},", self.queries_per_cell);
        let _ = writeln!(s, "  \"host_cores\": {},", self.host_cores);
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"scenario\": \"{}\", \"mode\": \"{}\", \"shards\": {}, \"readers\": {}, \
                 \"rate\": {}, \"queries\": {}, \"mutations_applied\": {}, \"elapsed_ns\": {}, \
                 \"qps\": {:.1}, \"checksum\": {}, \"rows_reclaimed\": {}, \"tombstone_ppm\": {}}}",
                c.scenario,
                c.mode,
                c.shards,
                c.readers,
                c.rate,
                c.queries,
                c.mutations_applied,
                c.elapsed_ns,
                c.qps,
                c.checksum,
                c.rows_reclaimed,
                c.tombstone_ppm,
            );
            s.push_str(if i + 1 < self.cells.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Renders the README's mutation-throughput table.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "| Scenario | Mode | Shards | Rate | kq/s | vs frozen | Tombstones (ppm) | Reclaimed |"
        );
        let _ = writeln!(s, "|---|---|---:|---:|---:|---:|---:|---:|");
        for c in &self.cells {
            let base = self
                .qps_of(c.scenario, "frozen", c.shards, c.rate)
                .unwrap_or(c.qps);
            let _ = writeln!(
                s,
                "| {} | {} | {} | {} | {:.1} | {:.2}x | {} | {} |",
                c.scenario,
                c.mode,
                c.shards,
                c.rate,
                c.qps / 1e3,
                c.qps / base.max(1e-9),
                c.tombstone_ppm,
                c.rows_reclaimed,
            );
        }
        s
    }
}

/// The naive mirror: the store's semantics replayed on a plain `Vec`.
/// Out-of-place exactly like the service — an update tombstones the old
/// row and appends the new value — so global rowids stay aligned with
/// the service's coordinate system until both compact together.
struct NaiveModel {
    rows: Vec<i64>,
    dead: Vec<bool>,
    dead_count: usize,
}

impl NaiveModel {
    fn new(data: &[i64]) -> Self {
        NaiveModel {
            rows: data.to_vec(),
            dead: vec![false; data.len()],
            dead_count: 0,
        }
    }

    fn len(&self) -> usize {
        self.rows.len()
    }

    fn apply(&mut self, m: Mutation<i64>) -> bool {
        match m {
            Mutation::Delete(row) => {
                if self.dead[row] {
                    return false;
                }
                self.dead[row] = true;
                self.dead_count += 1;
                true
            }
            Mutation::Update(row, v) => {
                if self.dead[row] {
                    return false;
                }
                self.dead[row] = true;
                self.dead_count += 1;
                self.rows.push(v);
                self.dead.push(false);
                true
            }
        }
    }

    fn append(&mut self, vals: &[i64]) {
        self.rows.extend_from_slice(vals);
        self.dead.resize(self.rows.len(), false);
    }

    /// COUNT/SUM/MIN/MAX over live rows in `[lo, hi]`, recomputed from
    /// scratch. The f64 sum is exact (integer partials below 2^53), so
    /// comparing its bit pattern against the engine is meaningful.
    fn answer(&self, lo: i64, hi: i64) -> (u64, f64, Option<i64>, Option<i64>) {
        let mut count = 0u64;
        let mut sum = 0.0f64;
        let mut min = None;
        let mut max = None;
        for (i, &v) in self.rows.iter().enumerate() {
            if self.dead[i] || v < lo || v > hi {
                continue;
            }
            count += 1;
            sum += v as f64;
            min = Some(match min {
                None => v,
                Some(m) => std::cmp::min(m, v),
            });
            max = Some(match max {
                None => v,
                Some(m) => std::cmp::max(m, v),
            });
        }
        (count, sum, min, max)
    }

    /// Mirrors compaction: dead rows drop out, live order is preserved.
    fn compact(&mut self) -> usize {
        let reclaimed = self.dead_count;
        let mut keep = Vec::with_capacity(self.rows.len() - self.dead_count);
        for (i, &v) in self.rows.iter().enumerate() {
            if !self.dead[i] {
                keep.push(v);
            }
        }
        self.rows = keep;
        self.dead = vec![false; self.rows.len()];
        self.dead_count = 0;
        reclaimed
    }
}

/// Asks the service for SUM (which carries COUNT) plus MIN and MAX over
/// `q`, asserts all four against the model, and folds them into `sum`.
fn verify_query(
    svc: &QueryService<i64>,
    model: &NaiveModel,
    q: RangeQuery,
    checksum: &mut u64,
    ctx: &str,
) {
    let pred = RangePredicate::between(q.lo, q.hi);
    let (want_count, want_sum, want_min, want_max) = model.answer(q.lo, q.hi);

    let reply = svc.query(pred, AggKind::Sum).expect("closed loop");
    let ans = reply.answer().expect("no deadline set");
    assert_eq!(ans.count, want_count, "{ctx}: COUNT diverged on {q:?}");
    let got_sum = ans.sum.expect("sum aggregate carries a sum");
    assert_eq!(
        got_sum.to_bits(),
        want_sum.to_bits(),
        "{ctx}: SUM diverged on {q:?} ({got_sum} vs {want_sum})"
    );

    let reply = svc.query(pred, AggKind::Min).expect("closed loop");
    let got_min = reply.answer().expect("no deadline set").min;
    assert_eq!(got_min, want_min, "{ctx}: MIN diverged on {q:?}");
    let reply = svc.query(pred, AggKind::Max).expect("closed loop");
    let got_max = reply.answer().expect("no deadline set").max;
    assert_eq!(got_max, want_max, "{ctx}: MAX diverged on {q:?}");

    *checksum = checksum
        .rotate_left(7)
        .wrapping_add(want_count)
        .wrapping_add(want_sum.to_bits())
        .wrapping_add(want_min.unwrap_or(-1) as u64)
        .wrapping_add(want_max.unwrap_or(-1) as u64);
}

/// The next mutation batch of a scenario; deterministic in `rng` and the
/// (mirrored, hence config-independent) model length.
fn next_batch(
    scenario: &str,
    rate: usize,
    domain: i64,
    model: &NaiveModel,
    rng: &mut StdRng,
) -> Vec<Mutation<i64>> {
    (0..rate)
        .map(|_| {
            let row = rng.gen_range(0..model.len());
            match scenario {
                "update-hotspot" => Mutation::Update(row, rng.gen_range(0..domain)),
                "delete-storm" => Mutation::Delete(row),
                _ => {
                    if rng.gen_range(0..2u32) == 0 {
                        Mutation::Delete(row)
                    } else {
                        Mutation::Update(row, rng.gen_range(0..domain))
                    }
                }
            }
        })
        .collect()
}

/// Runs the closed loop for one cell and returns (stats, elapsed,
/// checksum, applied, reclaimed).
#[allow(clippy::too_many_arguments)]
fn run_cell(
    data: &[i64],
    scenario: &'static str,
    mode: AdaptationMode,
    shards: usize,
    readers: usize,
    rate: usize,
    queries_per_cell: usize,
    domain: i64,
    seed: u64,
) -> (ServerStats, u64, u64, u64, u64) {
    let svc = QueryService::start(
        data.to_vec(),
        ServerConfig {
            readers,
            shards,
            adaptation: mode,
            // The checksum loop owns compaction: it happens exactly once,
            // at the end, mirrored by the model.
            compact_tombstone_ratio: None,
            ..ServerConfig::default()
        },
    );
    let mut model = NaiveModel::new(data);
    // The mutation stream depends only on (scenario, rate, seed) and the
    // mirrored model length, so every config of one (scenario, rate)
    // sees the identical stream.
    let mut mut_rng = StdRng::seed_from_u64(seed ^ (rate as u64).wrapping_mul(0x9E37_79B9));
    let qs = scenario_queries(scenario, queries_per_cell, domain, seed);
    let ctx = format!("{scenario}/{}/s{shards}/r{rate}", mode.label());

    let mut checksum = 0u64;
    let mut applied_total = 0u64;
    let t0 = Instant::now();
    for (i, &q) in qs.iter().enumerate() {
        verify_query(&svc, &model, q, &mut checksum, &ctx);

        let batch = next_batch(scenario, rate, domain, &model, &mut mut_rng);
        let want_applied: usize = batch.iter().map(|&m| usize::from(model.apply(m))).sum();
        let applied = svc.mutate(batch).expect("maintenance thread lives");
        assert_eq!(applied, want_applied, "{ctx}: applied count diverged");
        applied_total += applied as u64;

        if scenario == "moving-hotspot-over-churn" && i % 32 == 31 {
            let rows: Vec<i64> = (0..64).map(|_| mut_rng.gen_range(0..domain)).collect();
            model.append(&rows);
            svc.append(rows);
        }
    }
    let elapsed_ns = t0.elapsed().as_nanos() as u64;

    // Compaction epilogue: reclaim tombstones on both sides, then prove
    // the value aggregates did not move.
    let tombstone_ppm = svc.stats().tombstone_ppm;
    let reclaimed = svc.compact().expect("maintenance thread lives");
    assert_eq!(reclaimed, model.dead_count, "{ctx}: reclaimed diverged");
    model.compact();
    for &q in qs.iter().take(32) {
        verify_query(&svc, &model, q, &mut checksum, &ctx);
    }

    let mut stats = svc.shutdown();
    stats.tombstone_ppm = tombstone_ppm;
    (stats, elapsed_ns, checksum, applied_total, reclaimed as u64)
}

/// The query stream of a scenario (value-domain hotspots; the store is
/// sorted, so hotspots touch few zones once the zonemap adapts).
fn scenario_queries(scenario: &str, count: usize, domain: i64, seed: u64) -> Vec<RangeQuery> {
    match scenario {
        "update-hotspot" => queries::hotspot_ranges(count, domain, 0.02, 0.5, 0.1, seed),
        "delete-storm" => queries::uniform_ranges(count, domain, 0.02, seed),
        _ => queries::shifting_hotspot(count, domain, 0.02, 4, 0.1, seed),
    }
}

/// Runs the full grid: [`SCENARIOS`] × [`RATES`] × [`CONFIGS`] over
/// sorted data, asserting checksum equality across the configs of every
/// (scenario, rate).
pub fn run(rows: usize, queries_per_cell: usize, domain: i64, seed: u64) -> MutationBenchReport {
    let data = DataSpec::Sorted.generate(rows, domain, seed);
    let mut report = MutationBenchReport {
        rows,
        queries_per_cell,
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        cells: Vec::new(),
    };

    for &scenario in SCENARIOS {
        for &rate in RATES {
            let mut reference: Option<u64> = None;
            for &(mode, shards, readers) in CONFIGS {
                eprintln!(
                    "  e20: {scenario} {} x{shards} shards x{readers} readers rate {rate}",
                    mode.label()
                );
                let (stats, elapsed_ns, checksum, applied, reclaimed) = run_cell(
                    &data,
                    scenario,
                    mode,
                    shards,
                    readers,
                    rate,
                    queries_per_cell,
                    domain,
                    seed,
                );
                match reference {
                    Some(want) => assert_eq!(
                        checksum, want,
                        "{scenario}/r{rate}: checksums diverged across configs"
                    ),
                    None => reference = Some(checksum),
                }
                report.cells.push(MutationCell {
                    scenario,
                    mode: mode.label(),
                    shards,
                    readers,
                    rate,
                    queries: queries_per_cell as u64,
                    mutations_applied: applied,
                    elapsed_ns,
                    qps: queries_per_cell as f64 / (elapsed_ns.max(1) as f64 / 1e9),
                    checksum,
                    rows_reclaimed: reclaimed,
                    tombstone_ppm: stats.tombstone_ppm,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_grid_runs_and_serialises() {
        let report = run(4_000, 12, 10_000, 7);
        assert_eq!(
            report.cells.len(),
            SCENARIOS.len() * RATES.len() * CONFIGS.len()
        );
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"ads-mutation-bench/v1\""));
        assert!(json.contains("\"scenario\": \"delete-storm\""));
        assert!(!report.to_markdown().is_empty());
        for c in &report.cells {
            assert_eq!(c.queries, 12);
            assert!(c.qps > 0.0);
            assert!(
                c.mutations_applied > 0,
                "{}: no mutation took effect",
                c.scenario
            );
        }
        // Every (scenario, rate) produced one shared checksum across its
        // four configs (run() asserts it; spot-check the fold here).
        for sc in SCENARIOS {
            for &rate in RATES {
                let sums: Vec<u64> = report
                    .cells
                    .iter()
                    .filter(|c| c.scenario == *sc && c.rate == rate)
                    .map(|c| c.checksum)
                    .collect();
                assert_eq!(sums.len(), CONFIGS.len());
                assert!(sums.windows(2).all(|w| w[0] == w[1]));
            }
        }
    }
}

//! Common experiment machinery: replay one query workload against one
//! strategy and collect everything the reports need.

use ads_core::RangePredicate;
use ads_engine::{AggKind, ColumnSession, CumulativeMetrics, ExecPolicy, QueryMetrics, Strategy};
use ads_workloads::RangeQuery;

/// Experiment sizing, overridable from the harness command line.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Rows per column.
    pub rows: usize,
    /// Queries per workload.
    pub queries: usize,
    /// Value domain `[0, domain)`.
    pub domain: i64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            rows: 2_000_000,
            queries: 300,
            domain: 1_000_000,
            seed: 42,
        }
    }
}

impl Scale {
    /// A fast configuration for smoke runs (`harness --quick`).
    pub fn quick() -> Self {
        Scale {
            rows: 200_000,
            queries: 60,
            ..Scale::default()
        }
    }
}

/// Everything one strategy replay produced.
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// The built index's display name.
    pub label: String,
    /// Cumulative metrics over the whole sequence.
    pub totals: CumulativeMetrics,
    /// Per-query metrics in order.
    pub history: Vec<QueryMetrics>,
    /// Metadata bytes at the end of the run.
    pub metadata_bytes: usize,
    /// Data-copy bytes at the end of the run.
    pub data_copy_bytes: usize,
    /// Sum of all query counts — equal across strategies on the same
    /// workload, which every experiment asserts as a built-in soundness
    /// check.
    pub answer_checksum: u64,
}

impl ReplayResult {
    /// Mean per-query latency in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        self.totals.mean_latency_ns()
    }

    /// Speedup of this replay relative to `baseline` on query time only.
    pub fn speedup_vs(&self, baseline: &ReplayResult) -> f64 {
        baseline.totals.wall_ns as f64 / self.totals.wall_ns.max(1) as f64
    }

    /// Speedup including index build time.
    pub fn speedup_with_build_vs(&self, baseline: &ReplayResult) -> f64 {
        baseline.totals.total_with_build_ns() as f64
            / self.totals.total_with_build_ns().max(1) as f64
    }
}

/// Replays `queries` (as COUNT aggregates) over `data` with `strategy`.
pub fn replay(data: &[i64], queries: &[RangeQuery], strategy: &Strategy) -> ReplayResult {
    replay_agg(data, queries, strategy, AggKind::Count)
}

/// Replays with an explicit aggregate kind.
pub fn replay_agg(
    data: &[i64],
    queries: &[RangeQuery],
    strategy: &Strategy,
    agg: AggKind,
) -> ReplayResult {
    replay_with_policy(data, queries, strategy, agg, ExecPolicy::default())
}

/// Replays with an explicit aggregate kind and execution policy (E15).
pub fn replay_with_policy(
    data: &[i64],
    queries: &[RangeQuery],
    strategy: &Strategy,
    agg: AggKind,
    policy: ExecPolicy,
) -> ReplayResult {
    let mut session = ColumnSession::new(data.to_vec(), strategy)
        .record_history(true)
        .with_exec_policy(policy);
    let mut checksum = 0u64;
    for q in queries {
        let (answer, _) = session.query(RangePredicate::between(q.lo, q.hi), agg);
        checksum = checksum.wrapping_add(answer.count);
    }
    let (metadata_bytes, data_copy_bytes) = session.index_bytes();
    ReplayResult {
        label: session.label().to_string(),
        totals: *session.totals(),
        history: session.history().to_vec(),
        metadata_bytes,
        data_copy_bytes,
        answer_checksum: checksum,
    }
}

/// Asserts that every replay answered the workload identically.
///
/// # Panics
/// Panics when two strategies disagree — a soundness bug, not a
/// performance artifact, so experiments refuse to report.
pub fn assert_same_answers(results: &[ReplayResult]) {
    if let Some(first) = results.first() {
        for r in &results[1..] {
            assert_eq!(
                r.answer_checksum, first.answer_checksum,
                "{} and {} disagree on answers",
                r.label, first.label
            );
        }
    }
}

/// Mean latency (ns) of a window `[from, to)` of the per-query history.
pub fn window_mean_ns(history: &[QueryMetrics], from: usize, to: usize) -> f64 {
    let to = to.min(history.len());
    if from >= to {
        return 0.0;
    }
    history[from..to].iter().map(|m| m.wall_ns).sum::<u64>() as f64 / (to - from) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ads_workloads::{DataSpec, QuerySpec};

    #[test]
    fn replay_is_reproducible_and_consistent() {
        let scale = Scale {
            rows: 20_000,
            queries: 30,
            ..Scale::default()
        };
        let data = DataSpec::AlmostSorted { noise: 0.05 }.generate(scale.rows, scale.domain, 1);
        let qs =
            QuerySpec::UniformRandom { selectivity: 0.01 }.generate(scale.queries, scale.domain, 2);
        let results: Vec<ReplayResult> = Strategy::roster()
            .iter()
            .map(|s| replay(&data, &qs, s))
            .collect();
        assert_same_answers(&results);
        for r in &results {
            assert_eq!(r.history.len(), 30);
            assert_eq!(r.totals.queries, 30);
            assert!(r.mean_ns() > 0.0);
        }
    }

    #[test]
    fn speedup_is_relative() {
        let data = DataSpec::Sorted.generate(100_000, 1_000_000, 1);
        let qs = QuerySpec::UniformRandom { selectivity: 0.001 }.generate(50, 1_000_000, 2);
        let slow = replay(&data, &qs, &Strategy::FullScan);
        let fast = replay(&data, &qs, &Strategy::StaticZonemap { zone_rows: 4096 });
        assert!(
            fast.speedup_vs(&slow) > 1.0,
            "zonemap should win on sorted data"
        );
        assert!((slow.speedup_vs(&slow) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn window_mean() {
        let h = vec![
            QueryMetrics {
                wall_ns: 10,
                ..Default::default()
            },
            QueryMetrics {
                wall_ns: 30,
                ..Default::default()
            },
        ];
        assert_eq!(window_mean_ns(&h, 0, 2), 20.0);
        assert_eq!(window_mean_ns(&h, 1, 2), 30.0);
        assert_eq!(window_mean_ns(&h, 2, 2), 0.0);
        assert_eq!(window_mean_ns(&h, 0, 100), 20.0);
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn mismatched_answers_panic() {
        let a = ReplayResult {
            label: "a".into(),
            totals: CumulativeMetrics::default(),
            history: vec![],
            metadata_bytes: 0,
            data_copy_bytes: 0,
            answer_checksum: 1,
        };
        let mut b = a.clone();
        b.label = "b".into();
        b.answer_checksum = 2;
        assert_same_answers(&[a, b]);
    }
}

//! E17 machinery — sharded service scaling and publication cost, emitted
//! as the machine-readable `ads-shard-bench/v1` document
//! (`results/BENCH_shards.json`).
//!
//! The measurement is the E16 closed loop (one client thread per reader,
//! async adaptation) swept over a shard-count axis, after a single-stream
//! warmup pass that drives the zonemaps to steady state (the publication
//! question is about an ongoing service, not cold-start zone builds).
//! Two things are under test:
//!
//! * **Equivalence** — per-client answer checksums must be identical at
//!   every shard count (the sharded path changes fan-out, never answers);
//! * **Publication cost** — with per-shard snapshot cells, the
//!   maintenance thread republishes only the lanes whose mutation epoch
//!   moved. Each cell records the bytes actually cloned
//!   (`republish_bytes`) next to the bytes a whole-map scheme would have
//!   cloned over the same rounds (`whole_map_bytes`), so the saving is a
//!   measured ratio, not an estimate.

use ads_core::RangePredicate;
use ads_engine::AggKind;
use ads_server::{AdaptationMode, QueryService, ServerConfig, ServerStats};
use ads_workloads::{queries, DataSpec};
use std::collections::HashMap;
use std::fmt::Write;
use std::time::Instant;

/// Shard counts each distribution is swept over.
pub const SHARD_COUNTS: &[usize] = &[1, 4, 16];

/// Reader (= client) counts each shard count is measured at.
pub const READER_COUNTS: &[usize] = &[1, 4];

/// One measured (distribution, shards, readers) cell, async mode.
#[derive(Debug, Clone)]
pub struct ShardCell {
    /// Data distribution label.
    pub dist: String,
    /// Shard count.
    pub shards: usize,
    /// Reader threads (= closed-loop client threads).
    pub readers: usize,
    /// Queries answered in the measured phase (warmup excluded).
    pub queries: u64,
    /// Wall time of the measured phase.
    pub elapsed_ns: u64,
    /// Answered queries per second.
    pub qps: f64,
    /// Latency percentiles (dequeue-to-answer; the histogram is
    /// cumulative, so the single-stream warmup is included).
    pub p50_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// Observations dropped at the feedback channel (measured phase).
    pub feedback_dropped: u64,
    /// Feedback queued but unapplied when the clients finished (how far
    /// adaptation lagged execution at the end of the run).
    pub adaptation_lag: u64,
    /// Publication rounds that republished at least one lane (measured
    /// phase).
    pub snapshots_published: u64,
    /// Individual shard lanes republished across those rounds.
    pub shards_republished: u64,
    /// Zonemap metadata bytes actually cloned for republished lanes.
    pub republish_bytes: u64,
    /// Bytes a whole-map (every lane, every round) scheme would have
    /// cloned over the same maintenance rounds.
    pub whole_map_bytes: u64,
}

impl ShardCell {
    /// Mean lanes republished per publication round.
    pub fn lanes_per_round(&self) -> f64 {
        self.shards_republished as f64 / self.snapshots_published.max(1) as f64
    }

    /// Measured publication bytes as a fraction of the whole-map clone.
    pub fn republish_fraction(&self) -> f64 {
        self.republish_bytes as f64 / self.whole_map_bytes.max(1) as f64
    }
}

/// The full E17 result set.
#[derive(Debug, Clone)]
pub struct ShardBenchReport {
    /// Rows per column.
    pub rows: usize,
    /// Queries each client submits.
    pub queries_per_client: usize,
    /// Host cores (context for the scaling numbers).
    pub host_cores: usize,
    /// Measured cells, shard-count-major per distribution.
    pub cells: Vec<ShardCell>,
}

impl ShardBenchReport {
    /// The headline acceptance check: at every cell with ≥4 shards, the
    /// epoch-diffed per-shard publication cloned strictly fewer bytes than
    /// the whole-map scheme would have over the same maintenance rounds.
    pub fn sharding_bounds_republish(&self) -> bool {
        self.cells
            .iter()
            .filter(|c| c.shards >= 4)
            .all(|c| c.whole_map_bytes > 0 && c.republish_bytes < c.whole_map_bytes)
    }

    /// Renders the `ads-shard-bench/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str("  \"schema\": \"ads-shard-bench/v1\",\n");
        let _ = writeln!(s, "  \"rows\": {},", self.rows);
        let _ = writeln!(s, "  \"queries_per_client\": {},", self.queries_per_client);
        let _ = writeln!(s, "  \"host_cores\": {},", self.host_cores);
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"dist\": \"{}\", \"shards\": {}, \"readers\": {}, \"queries\": {}, \
                 \"elapsed_ns\": {}, \"qps\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}, \
                 \"feedback_dropped\": {}, \"adaptation_lag\": {}, \
                 \"snapshots_published\": {}, \"shards_republished\": {}, \
                 \"republish_bytes\": {}, \"whole_map_bytes\": {}, \
                 \"republish_fraction\": {:.4}}}",
                c.dist,
                c.shards,
                c.readers,
                c.queries,
                c.elapsed_ns,
                c.qps,
                c.p50_ns,
                c.p99_ns,
                c.feedback_dropped,
                c.adaptation_lag,
                c.snapshots_published,
                c.shards_republished,
                c.republish_bytes,
                c.whole_map_bytes,
                c.republish_fraction(),
            );
            s.push_str(if i + 1 < self.cells.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Renders the README's sharding table.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "| Distribution | Shards | Readers | kq/s | p50 µs | p99 µs | \
             lanes/round | republish vs whole-map | lag |"
        );
        let _ = writeln!(s, "|---|---:|---:|---:|---:|---:|---:|---:|---:|");
        for c in &self.cells {
            let _ = writeln!(
                s,
                "| {} | {} | {} | {:.1} | {:.0} | {:.0} | {:.2} | {:.1}% | {} |",
                c.dist,
                c.shards,
                c.readers,
                c.qps / 1e3,
                c.p50_ns as f64 / 1e3,
                c.p99_ns as f64 / 1e3,
                c.lanes_per_round(),
                c.republish_fraction() * 100.0,
                c.adaptation_lag,
            );
        }
        s
    }
}

/// Stats deltas and checksums from one closed-loop cell.
struct CellRun {
    /// Stats at warmup end — subtracted so the counters measure the
    /// steady-state phase, not cold-start zone builds.
    warm: ServerStats,
    /// Stats at shutdown (cumulative).
    fin: ServerStats,
    /// Adaptation lag sampled when the clients finished (before the
    /// shutdown drain zeroes it).
    lag_at_end: u64,
    /// Wall time of the measured phase.
    elapsed_ns: u64,
    /// Per-client answer checksums.
    checksums: Vec<u64>,
}

/// Runs one cell: a warmup pass (single stream, then a flush barrier)
/// drives the zonemaps to steady state, then `readers` closed-loop
/// clients run the measured phase. The publication-cost question is
/// about an ongoing service, so the reported counters are deltas over
/// the measured phase only.
fn run_cell(
    data: &[i64],
    shards: usize,
    readers: usize,
    queries_per_client: usize,
    domain: i64,
    seed: u64,
) -> CellRun {
    let svc = QueryService::start(
        data.to_vec(),
        ServerConfig {
            readers,
            shards,
            queue_capacity: 4 * readers.max(1) + 16,
            adaptation: AdaptationMode::Async,
            ..ServerConfig::default()
        },
    );

    for q in queries::uniform_ranges(queries_per_client, domain, 0.05, seed ^ 0xFEED_FACE) {
        let pred = RangePredicate::between(q.lo, q.hi);
        svc.query(pred, AggKind::Count).expect("warmup");
    }
    svc.flush();
    let warm = svc.stats();

    let t0 = Instant::now();
    let checksums: Vec<u64> = std::thread::scope(|scope| {
        let svc = &svc;
        let handles: Vec<_> = (0..readers)
            .map(|client| {
                scope.spawn(move || {
                    // The client's stream depends only on its index, so the
                    // same client sees the same queries at every shard
                    // count — the checksums must agree.
                    let preds = queries::uniform_ranges(
                        queries_per_client,
                        domain,
                        0.05,
                        seed ^ (client as u64).wrapping_mul(0x9E37_79B9),
                    );
                    let mut checksum = 0u64;
                    for q in preds {
                        let pred = RangePredicate::between(q.lo, q.hi);
                        let reply = svc.query(pred, AggKind::Count).expect("closed loop");
                        checksum =
                            checksum.wrapping_add(reply.answer().expect("no deadline").count);
                    }
                    checksum
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed_ns = t0.elapsed().as_nanos() as u64;
    let lag_at_end = svc.stats().adaptation_lag;

    CellRun {
        warm,
        fin: svc.shutdown(),
        lag_at_end,
        elapsed_ns,
        checksums,
    }
}

/// Runs the full grid: {sorted, clustered, uniform} × [`SHARD_COUNTS`] ×
/// [`READER_COUNTS`], async mode throughout.
pub fn run(rows: usize, queries_per_client: usize, domain: i64, seed: u64) -> ShardBenchReport {
    let mut report = ShardBenchReport {
        rows,
        queries_per_client,
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        cells: Vec::new(),
    };

    for spec in [
        DataSpec::Sorted,
        DataSpec::Clustered { clusters: 64 },
        DataSpec::Uniform,
    ] {
        let data = spec.generate(rows, domain, seed);
        let dist = spec.label();
        // client index -> checksum; equal streams must answer equally at
        // every shard count.
        let mut reference: HashMap<usize, u64> = HashMap::new();
        for &shards in SHARD_COUNTS {
            for &readers in READER_COUNTS {
                eprintln!("  e17: {dist} {shards} shard(s) x{readers} readers");
                let run = run_cell(&data, shards, readers, queries_per_client, domain, seed);
                for (client, &sum) in run.checksums.iter().enumerate() {
                    match reference.get(&client) {
                        Some(&want) => assert_eq!(
                            sum, want,
                            "{dist}/{shards} shards/{readers} readers: \
                             client {client} answers diverged"
                        ),
                        None => {
                            reference.insert(client, sum);
                        }
                    }
                }
                let queries = run.fin.queries - run.warm.queries;
                assert_eq!(queries, (readers * queries_per_client) as u64);
                report.cells.push(ShardCell {
                    dist: dist.clone(),
                    shards,
                    readers,
                    queries,
                    elapsed_ns: run.elapsed_ns,
                    qps: queries as f64 / (run.elapsed_ns.max(1) as f64 / 1e9),
                    p50_ns: run.fin.latency.p50_ns(),
                    p99_ns: run.fin.latency.p99_ns(),
                    feedback_dropped: run.fin.feedback_dropped - run.warm.feedback_dropped,
                    adaptation_lag: run.lag_at_end,
                    snapshots_published: run.fin.snapshots_published - run.warm.snapshots_published,
                    shards_republished: run.fin.shards_republished - run.warm.shards_republished,
                    republish_bytes: run.fin.republish_bytes - run.warm.republish_bytes,
                    whole_map_bytes: run.fin.whole_map_bytes - run.warm.whole_map_bytes,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_grid_runs_and_serialises() {
        let report = run(4_000, 10, 10_000, 7);
        assert_eq!(
            report.cells.len(),
            3 * SHARD_COUNTS.len() * READER_COUNTS.len()
        );
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"ads-shard-bench/v1\""));
        assert!(json.contains("\"shards\": 16"));
        assert!(!report.to_markdown().is_empty());
        for c in &report.cells {
            assert_eq!(c.queries, (c.readers * 10) as u64);
            assert!(c.qps > 0.0);
            assert!(c.republish_bytes <= c.whole_map_bytes);
        }
    }
}

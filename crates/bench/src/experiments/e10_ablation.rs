//! E10 — ablation of the adaptive components.
//!
//! Which of the framework's techniques earns its keep where: lazy building
//! alone, + refinement splits, + coarsening merges, + deactivation. The
//! uniform column is where merge/deactivate matter; the clustered and
//! mixed columns are where splits matter.

use crate::report::{fmt_ms, Report};
use crate::runner::{assert_same_answers, replay, Scale};
use ads_core::adaptive::AdaptiveConfig;
use ads_engine::Strategy;
use ads_workloads::{DataSpec, QuerySpec};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let variants: Vec<(&str, AdaptiveConfig)> = vec![
        ("lazy only", AdaptiveConfig::lazy_only()),
        ("+split", AdaptiveConfig::split_only()),
        (
            "+split+merge",
            AdaptiveConfig {
                enable_mask: false,
                ..AdaptiveConfig::no_deactivate()
            },
        ),
        ("+deactivate", AdaptiveConfig::no_mask()),
        ("full (+masks)", AdaptiveConfig::default()),
    ];
    let distributions = vec![
        DataSpec::AlmostSorted { noise: 0.05 },
        DataSpec::Clustered { clusters: 64 },
        DataSpec::Uniform,
        DataSpec::MixedRegions,
    ];
    let mut headers = vec!["variant".to_string()];
    for d in &distributions {
        headers.push(format!("{} ms", d.label()));
        headers.push("events".to_string());
    }
    let mut report = Report::new(
        "e10",
        "adaptive-component ablation: total query time and adaptation events",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    report.note(format!(
        "{} rows, {} COUNT queries @1% selectivity; full-scan reference in last row",
        scale.rows, scale.queries
    ));

    let queries = QuerySpec::UniformRandom { selectivity: 0.01 }.generate(
        scale.queries,
        scale.domain,
        scale.seed,
    );
    let datasets: Vec<Vec<i64>> = distributions
        .iter()
        .map(|d| d.generate(scale.rows, scale.domain, scale.seed))
        .collect();

    let mut rows: Vec<Vec<String>> = variants
        .iter()
        .map(|(name, _)| vec![name.to_string()])
        .collect();
    let mut fullscan_row = vec!["full scan".to_string()];
    for data in &datasets {
        let mut results = Vec::new();
        for (_, cfg) in &variants {
            results.push(replay(data, &queries, &Strategy::Adaptive(cfg.clone())));
        }
        let base = replay(data, &queries, &Strategy::FullScan);
        results.push(base.clone());
        assert_same_answers(&results);
        for (row, r) in rows.iter_mut().zip(&results) {
            row.push(fmt_ms(r.totals.wall_ns));
            row.push(r.totals.adapt_events.to_string());
        }
        fullscan_row.push(fmt_ms(base.totals.wall_ns));
        fullscan_row.push("0".to_string());
    }
    for row in rows {
        report.row(row);
    }
    report.row(fullscan_row);
    report
}

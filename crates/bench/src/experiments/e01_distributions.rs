//! E1 — "Scans benefit from data skipping when the data order is sorted,
//! semi-sorted, or comprised of clustered values."
//!
//! Static zonemaps vs plain scans across the abstract's distribution
//! classes: large wins where order/clustering exists, nothing on uniform.

use crate::report::{fmt_us, fmt_x, Report};
use crate::runner::{assert_same_answers, replay, Scale};
use ads_engine::Strategy;
use ads_workloads::{DataSpec, QuerySpec};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new(
        "e1",
        "skipping benefit by data distribution (static zonemaps vs full scan)",
        &[
            "distribution",
            "strategy",
            "mean µs/query",
            "rows scanned/query",
            "skip %",
            "speedup",
        ],
    );
    report.note(format!(
        "{} rows, {} COUNT queries @1% value-domain selectivity",
        scale.rows, scale.queries
    ));

    let queries = QuerySpec::UniformRandom { selectivity: 0.01 }.generate(
        scale.queries,
        scale.domain,
        scale.seed,
    );
    for spec in DataSpec::standard_suite() {
        let data = spec.generate(scale.rows, scale.domain, scale.seed);
        let base = replay(&data, &queries, &Strategy::FullScan);
        let zm = replay(
            &data,
            &queries,
            &Strategy::StaticZonemap { zone_rows: 4096 },
        );
        assert_same_answers(&[base.clone(), zm.clone()]);
        for r in [&base, &zm] {
            let scanned_per_q = r.totals.rows_scanned as f64 / r.totals.queries as f64;
            report.row(vec![
                spec.label(),
                r.label.clone(),
                fmt_us(r.mean_ns()),
                format!("{scanned_per_q:.0}"),
                format!("{:.1}", 100.0 * (1.0 - scanned_per_q / scale.rows as f64)),
                fmt_x(r.speedup_vs(&base)),
            ]);
        }
    }
    report
}

//! E18 — conjunction probe planning: planned vs fixed order vs oracle.
//!
//! Each cell of [`crate::plan_bench`] fixes a two-column workload and an
//! adversarial-or-not caller order; the planner must match the legacy
//! fixed order where the caller order was already right, flip it where it
//! was wrong, and stop probing entirely where metadata cannot skip.

use crate::plan_bench;
use crate::report::Report;
use crate::runner::Scale;

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new(
        "e18",
        "conjunction probe planning: planned vs fixed order vs oracle",
        &[
            "cell",
            "mode",
            "total ms",
            "zones probed",
            "rows scanned",
            "fallbacks",
            "model cost",
            "vs fixed",
        ],
    );
    report.note(format!(
        "{} rows x 2 columns, {} conjunctive COUNT queries per mode; model cost = \
         probe_cost x zones_probed + rows_scanned",
        scale.rows, scale.queries
    ));

    let bench = plan_bench::run(scale.rows, scale.queries, scale.domain, scale.seed);
    for cell in &bench.cells {
        let fixed_cost = cell.mode("fixed").model_cost.max(1.0);
        for m in &cell.modes {
            report.row(vec![
                cell.label.clone(),
                m.mode.clone(),
                format!("{:.1}", m.wall_ns as f64 / 1e6),
                m.zones_probed.to_string(),
                m.rows_scanned.to_string(),
                m.fallbacks.to_string(),
                format!("{:.0}", m.model_cost),
                format!("{:.2}", m.model_cost / fixed_cost),
            ]);
        }
    }
    report.note(format!(
        "planned never worse than fixed: {}; adversarial cell beaten: {}; \
         fallback on uniform: {}",
        bench.planned_never_worse(),
        bench.adversarial_beats_fixed(),
        bench.fallback_engages_on_uniform()
    ));
    report
}

//! E8 — "lightweight indexes": build cost and memory footprint.
//!
//! What each structure costs before the first query (build time) and in
//! steady state (metadata bytes, data-copy bytes) after the workload ran.

use crate::report::{fmt_bytes, fmt_ms, Report};
use crate::runner::{replay, Scale};
use ads_engine::Strategy;
use ads_workloads::{DataSpec, QuerySpec};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new(
        "e8",
        "index build cost and memory footprint after the workload",
        &[
            "distribution",
            "strategy",
            "build ms",
            "metadata",
            "data copy",
            "bytes/row",
        ],
    );
    report.note(format!(
        "{} rows ({} of raw column data), footprints measured after {} queries",
        scale.rows,
        fmt_bytes(scale.rows * 8),
        scale.queries
    ));

    let queries = QuerySpec::UniformRandom { selectivity: 0.01 }.generate(
        scale.queries,
        scale.domain,
        scale.seed,
    );
    for spec in [DataSpec::Sorted, DataSpec::Uniform] {
        let data = spec.generate(scale.rows, scale.domain, scale.seed);
        for strategy in Strategy::roster() {
            let r = replay(&data, &queries, &strategy);
            let total = r.metadata_bytes + r.data_copy_bytes;
            report.row(vec![
                spec.label(),
                r.label.clone(),
                fmt_ms(r.totals.build_ns),
                fmt_bytes(r.metadata_bytes),
                fmt_bytes(r.data_copy_bytes),
                format!("{:.2}", total as f64 / scale.rows as f64),
            ]);
        }
    }
    report
}

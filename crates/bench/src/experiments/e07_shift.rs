//! E7 — workload shift: the hotspot jumps mid-sequence.
//!
//! Adaptive structures invest where queries land; when the workload moves,
//! that investment is stranded and must be re-earned (and, for adaptive
//! zonemaps, reclaimed via merge/deactivate/revive). Reported as mean
//! latency per phase on mixed-region data.

use crate::report::{fmt_us, Report};
use crate::runner::{assert_same_answers, replay, window_mean_ns, Scale};
use ads_core::adaptive::AdaptiveConfig;
use ads_engine::Strategy;
use ads_workloads::{DataSpec, QuerySpec};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let phases = 3usize;
    let queries_total = scale.queries.max(phases * 20);
    let adaptive_cfg = AdaptiveConfig {
        // Faster revival so stranded dead regions get their second chance
        // within the experiment's horizon.
        revival_base_queries: Some(64),
        ..AdaptiveConfig::default()
    };
    let strategies = [
        Strategy::FullScan,
        Strategy::StaticZonemap { zone_rows: 4096 },
        Strategy::Adaptive(adaptive_cfg),
        Strategy::Cracking,
    ];
    let mut headers = vec!["phase".to_string()];
    headers.extend(strategies.iter().map(|s| format!("{} µs", s.label())));
    let mut report = Report::new(
        "e7",
        "workload shift: mean per-query latency per hotspot phase (mixed-region data)",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    report.note(format!(
        "{} rows mixed-regions, {} queries @0.5% selectivity, hotspot jumps every {} queries",
        scale.rows,
        queries_total,
        queries_total / phases
    ));

    let data = DataSpec::MixedRegions.generate(scale.rows, scale.domain, scale.seed);
    let queries = QuerySpec::ShiftingHotspot {
        selectivity: 0.005,
        phases,
    }
    .generate(queries_total, scale.domain, scale.seed);

    let results: Vec<_> = strategies
        .iter()
        .map(|s| replay(&data, &queries, s))
        .collect();
    assert_same_answers(&results);

    let per_phase = queries_total / phases;
    for p in 0..phases {
        let (a, b) = (p * per_phase, (p + 1) * per_phase);
        // Sub-windows inside each phase show re-convergence.
        let early = (a, a + per_phase / 4);
        let late = (b - per_phase / 4, b);
        for (label, (wa, wb)) in [
            (format!("phase {} early", p + 1), early),
            (format!("phase {} late", p + 1), late),
        ] {
            let mut row = vec![label];
            for r in &results {
                row.push(fmt_us(window_mean_ns(&r.history, wa, wb)));
            }
            report.row(row);
        }
    }
    for r in &results {
        if r.totals.adapt_events > 0 {
            report.note(format!(
                "{}: {} adaptation events",
                r.label, r.totals.adapt_events
            ));
        }
    }
    report
}

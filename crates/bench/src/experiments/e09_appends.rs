//! E9 — appends and freshness: main-memory stores ingest continuously.
//!
//! Queries interleave with append batches; every strategy must stay
//! correct while paying its own maintenance. Lazy metadata (adaptive
//! zonemaps) absorbs appends for free; eager copies (sorted oracle) pay
//! re-sorts; cracking degrades through tail scans and index rebuilds.

use crate::report::{fmt_ms, fmt_us, Report};
use crate::runner::Scale;
use ads_core::RangePredicate;
use ads_engine::{AggKind, ColumnSession, Strategy};
use ads_workloads::{data, queries};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new(
        "e9",
        "interleaved appends: query time vs maintenance time",
        &[
            "strategy",
            "mean µs/query",
            "total query ms",
            "maintenance ms",
            "total ms",
        ],
    );
    let initial = scale.rows / 2;
    let batches = 20usize;
    let batch_rows = (scale.rows - initial) / batches;
    let queries_per_batch = (scale.queries / batches).max(1);
    report.note(format!(
        "start {initial} rows; {batches} batches of {batch_rows} appended rows, {queries_per_batch} queries between batches; semi-sorted stream"
    ));

    // A semi-sorted stream: the column grows in timestamp-ish order.
    let full = data::almost_sorted(scale.rows, scale.domain, 0.05, 256, scale.seed);
    let qs = queries::uniform_ranges(
        batches * queries_per_batch,
        scale.domain,
        0.01,
        scale.seed ^ 0xabcd,
    );

    let mut checksums: Vec<(String, u64)> = Vec::new();
    for strategy in Strategy::roster() {
        let mut session = ColumnSession::new(full[..initial].to_vec(), &strategy);
        let mut maintenance_ns = 0u64;
        let mut checksum = 0u64;
        let mut qi = 0usize;
        for b in 0..batches {
            for _ in 0..queries_per_batch {
                let q = qs[qi];
                qi += 1;
                let (ans, _) = session.query(RangePredicate::between(q.lo, q.hi), AggKind::Count);
                checksum = checksum.wrapping_add(ans.count);
            }
            let start = initial + b * batch_rows;
            maintenance_ns += session.append(&full[start..start + batch_rows]);
        }
        checksums.push((session.label().to_string(), checksum));
        let t = session.totals();
        report.row(vec![
            session.label().to_string(),
            fmt_us(t.mean_latency_ns()),
            fmt_ms(t.wall_ns),
            fmt_ms(maintenance_ns + t.build_ns),
            fmt_ms(t.wall_ns + maintenance_ns + t.build_ns),
        ]);
    }
    let first = checksums[0].1;
    for (label, c) in &checksums {
        assert_eq!(*c, first, "{label} disagreed under appends");
    }
    report.note("all strategies returned identical answers throughout".to_string());
    report
}

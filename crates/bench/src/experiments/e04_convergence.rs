//! E4 — adaptation convergence: per-query latency over the sequence.
//!
//! The cracking-style curve: adaptive structures pay early queries to make
//! later ones cheap. Reported as mean latency per query window, one column
//! per strategy, on semi-sorted data.

use crate::report::{fmt_us, Report};
use crate::runner::{assert_same_answers, replay, window_mean_ns, Scale};
use ads_core::adaptive::AdaptiveConfig;
use ads_engine::Strategy;
use ads_workloads::{DataSpec, QuerySpec};

/// Query windows reported as rows (start, end).
fn windows(total: usize) -> Vec<(usize, usize)> {
    let mut out = vec![
        (0, 1),
        (1, 2),
        (2, 5),
        (5, 10),
        (10, 20),
        (20, 50),
        (50, 100),
    ];
    out.retain(|&(a, _)| a < total);
    if total > 100 {
        out.push((100, total));
    }
    out
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let strategies = [
        Strategy::FullScan,
        Strategy::StaticZonemap { zone_rows: 4096 },
        Strategy::Adaptive(AdaptiveConfig::default()),
        Strategy::Cracking,
    ];
    let mut headers = vec!["queries".to_string()];
    headers.extend(strategies.iter().map(|s| format!("{} µs", s.label())));
    let mut report = Report::new(
        "e4",
        "convergence: mean per-query latency by query window (semi-sorted data)",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    report.note(format!(
        "{} rows semi-sorted(5%), {} COUNT queries @1% selectivity",
        scale.rows, scale.queries
    ));

    let data =
        DataSpec::AlmostSorted { noise: 0.05 }.generate(scale.rows, scale.domain, scale.seed);
    let queries = QuerySpec::UniformRandom { selectivity: 0.01 }.generate(
        scale.queries,
        scale.domain,
        scale.seed,
    );
    let results: Vec<_> = strategies
        .iter()
        .map(|s| replay(&data, &queries, s))
        .collect();
    assert_same_answers(&results);

    for (a, b) in windows(scale.queries) {
        let mut row = vec![if b - a == 1 {
            format!("#{}", a + 1)
        } else {
            format!("#{}–{}", a + 1, b)
        }];
        for r in &results {
            row.push(fmt_us(window_mean_ns(&r.history, a, b)));
        }
        report.row(row);
    }
    report
}

//! E17 — sharded service: shard-count scaling and publication cost.
//!
//! Sharding the column gives the maintenance thread per-shard snapshot
//! cells, so a publication round clones only the lanes whose mutation
//! epoch moved instead of the whole zonemap. This experiment sweeps
//! {sorted, clustered, uniform} × shards {1, 4, 16} × readers {1, 4} in
//! async mode, checksumming every client stream across shard counts
//! (sharding must never change an answer) and recording the measured
//! republish bytes against the whole-map counterfactual.

use crate::report::Report;
use crate::runner::Scale;
use crate::shard_bench;

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new(
        "e17",
        "sharded service: per-shard republish cost vs whole-map clone",
        &[
            "distribution",
            "shards",
            "readers",
            "kq/s",
            "p50 µs",
            "p99 µs",
            "lanes/round",
            "republish/whole-map",
            "lag",
        ],
    );
    report.note(format!(
        "{} rows, {} COUNT queries/client @5% value-domain selectivity, \
         closed loop, async adaptation; host has {} core(s)",
        scale.rows,
        scale.queries,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));

    let bench = shard_bench::run(scale.rows, scale.queries, scale.domain, scale.seed ^ 0xE17);
    for c in &bench.cells {
        report.row(vec![
            c.dist.clone(),
            c.shards.to_string(),
            c.readers.to_string(),
            format!("{:.1}", c.qps / 1e3),
            format!("{:.0}", c.p50_ns as f64 / 1e3),
            format!("{:.0}", c.p99_ns as f64 / 1e3),
            format!("{:.2}", c.lanes_per_round()),
            format!("{:.1}%", c.republish_fraction() * 100.0),
            c.adaptation_lag.to_string(),
        ]);
    }
    report.note(if bench.sharding_bounds_republish() {
        "per-shard republish cloned strictly fewer bytes than the whole-map scheme at >=4 shards"
            .to_string()
    } else {
        "WARNING: per-shard republish did not undercut the whole-map clone at >=4 shards"
            .to_string()
    });
    report
}

//! E20 — query throughput over a mutating store: churn scenarios ×
//! {frozen, adaptive} × mutation rates.
//!
//! CSV-parity wrapper over [`crate::mutation_bench`] (the JSON emitter
//! is `mutations_json` → `results/BENCH_mutations.json`): every answer
//! in every cell is asserted bit-identical against a naive recompute
//! mirror, before and after compaction, and checksums are asserted
//! equal across modes, shard counts and reader counts — the speedups
//! below are for proven-identical work.

use crate::mutation_bench;
use crate::report::Report;
use crate::runner::Scale;

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new(
        "e20",
        "mutation subsystem: out-of-place updates/deletes under query load",
        &[
            "scenario",
            "mode",
            "shards",
            "readers",
            "rate",
            "kq/s",
            "vs frozen",
            "applied",
            "tombstone ppm",
            "reclaimed",
        ],
    );
    report.note(format!(
        "{} rows (sorted), {} verified queries/cell, mutations batched per query; \
         every answer checked against a naive mirror pre- and post-compaction",
        scale.rows, scale.queries
    ));

    let bench = mutation_bench::run(scale.rows, scale.queries, scale.domain, scale.seed ^ 0xE20);
    for c in &bench.cells {
        let base = bench
            .qps_of(c.scenario, "frozen", c.shards, c.rate)
            .unwrap_or(c.qps);
        report.row(vec![
            c.scenario.to_string(),
            c.mode.to_string(),
            c.shards.to_string(),
            c.readers.to_string(),
            c.rate.to_string(),
            format!("{:.1}", c.qps / 1e3),
            format!("{:.2}x", c.qps / base.max(1e-9)),
            c.mutations_applied.to_string(),
            c.tombstone_ppm.to_string(),
            c.rows_reclaimed.to_string(),
        ]);
    }
    report.note(if bench.adaptive_beats_frozen_on_update_hotspot() {
        "adaptive beats frozen on the update-hotspot scenario".to_string()
    } else {
        "WARNING: adaptive did not beat frozen on update-hotspot on this host".to_string()
    });
    report
}

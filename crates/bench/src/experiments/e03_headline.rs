//! E3 — the headline claim: "adaptive data skipping has potential for
//! 1.4X speedup."
//!
//! Full strategy roster across the distribution suite, reporting total
//! workload time and speedup over the no-skipping baseline. The paper's
//! 1.4X refers to adaptive zonemaps over workloads where static skipping
//! is partially effective (semi-sorted / mixed data); the sorted and
//! clustered rows show the larger wins any skipping gets there, and the
//! uniform row shows adaptive skipping refusing to lose.

use crate::report::{fmt_ms, fmt_x, Report};
use crate::runner::{assert_same_answers, replay, Scale};
use ads_engine::Strategy;
use ads_workloads::{DataSpec, QuerySpec};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new(
        "e3",
        "headline: total workload time and speedup vs full scan",
        &[
            "distribution",
            "strategy",
            "queries ms",
            "build ms",
            "speedup",
            "speedup w/ build",
        ],
    );
    report.note(format!(
        "{} rows, {} COUNT queries @1% selectivity; speedup = full-scan time / strategy time",
        scale.rows, scale.queries
    ));

    let queries = QuerySpec::UniformRandom { selectivity: 0.01 }.generate(
        scale.queries,
        scale.domain,
        scale.seed,
    );
    for spec in DataSpec::standard_suite() {
        let data = spec.generate(scale.rows, scale.domain, scale.seed);
        let results: Vec<_> = Strategy::roster()
            .iter()
            .map(|s| replay(&data, &queries, s))
            .collect();
        assert_same_answers(&results);
        let base = results[0].clone();
        for r in &results {
            report.row(vec![
                spec.label(),
                r.label.clone(),
                fmt_ms(r.totals.wall_ns),
                fmt_ms(r.totals.build_ns),
                fmt_x(r.speedup_vs(&base)),
                fmt_x(r.speedup_with_build_vs(&base)),
            ]);
        }
    }
    report
}

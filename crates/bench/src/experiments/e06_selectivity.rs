//! E6 — response to the query workload: selectivity sweep.
//!
//! Skipping pays most for selective queries (few candidate zones) and
//! fades as predicates widen; full-match detection keeps wide COUNT
//! queries cheap for zonemaps. Speedups vs full scan per selectivity.

use crate::report::{fmt_x, Report};
use crate::runner::{assert_same_answers, replay, Scale};
use ads_engine::Strategy;
use ads_workloads::{DataSpec, QuerySpec};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let strategies = Strategy::roster();
    let mut headers = vec!["selectivity".to_string()];
    headers.extend(strategies.iter().map(|s| s.label()));
    let mut report = Report::new(
        "e6",
        "speedup vs full scan across predicate selectivities (semi-sorted data)",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    report.note(format!(
        "{} rows semi-sorted(5%), {} COUNT queries per point",
        scale.rows, scale.queries
    ));

    let data =
        DataSpec::AlmostSorted { noise: 0.05 }.generate(scale.rows, scale.domain, scale.seed);
    for selectivity in [0.0001, 0.001, 0.01, 0.1, 0.5] {
        let queries = QuerySpec::UniformRandom { selectivity }.generate(
            scale.queries,
            scale.domain,
            scale.seed,
        );
        let results: Vec<_> = strategies
            .iter()
            .map(|s| replay(&data, &queries, s))
            .collect();
        assert_same_answers(&results);
        let base = results[0].clone();
        let mut row = vec![format!("{}%", selectivity * 100.0)];
        for r in &results {
            row.push(fmt_x(r.speedup_vs(&base)));
        }
        report.row(row);
    }
    report
}

//! The experiment registry: one module per table/figure of the
//! reconstructed evaluation (see DESIGN.md for the mapping).

pub mod e01_distributions;
pub mod e02_overhead;
pub mod e03_headline;
pub mod e04_convergence;
pub mod e05_zone_size;
pub mod e06_selectivity;
pub mod e07_shift;
pub mod e08_footprint;
pub mod e09_appends;
pub mod e10_ablation;
pub mod e11_multicolumn;
pub mod e12_activation;
pub mod e13_strings;
pub mod e14_masks;
pub mod e15_parallel;
pub mod e16_server;
pub mod e17_sharding;
pub mod e18_plans;
pub mod e19_reorg;
pub mod e20_mutations;
pub mod e21_sketches;

use crate::report::Report;
use crate::runner::Scale;

/// Experiment ids in execution order.
pub const ALL: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19", "e20", "e21",
];

/// Runs one experiment by id.
pub fn run(id: &str, scale: Scale) -> Option<Report> {
    match id {
        "e1" => Some(e01_distributions::run(scale)),
        "e2" => Some(e02_overhead::run(scale)),
        "e3" => Some(e03_headline::run(scale)),
        "e4" => Some(e04_convergence::run(scale)),
        "e5" => Some(e05_zone_size::run(scale)),
        "e6" => Some(e06_selectivity::run(scale)),
        "e7" => Some(e07_shift::run(scale)),
        "e8" => Some(e08_footprint::run(scale)),
        "e9" => Some(e09_appends::run(scale)),
        "e10" => Some(e10_ablation::run(scale)),
        "e11" => Some(e11_multicolumn::run(scale)),
        "e12" => Some(e12_activation::run(scale)),
        "e13" => Some(e13_strings::run(scale)),
        "e14" => Some(e14_masks::run(scale)),
        "e15" => Some(e15_parallel::run(scale)),
        "e16" => Some(e16_server::run(scale)),
        "e17" => Some(e17_sharding::run(scale)),
        "e18" => Some(e18_plans::run(scale)),
        "e19" => Some(e19_reorg::run(scale)),
        "e20" => Some(e20_mutations::run(scale)),
        "e21" => Some(e21_sketches::run(scale)),
        _ => None,
    }
}

//! E12 — index-level activation: the framework technique applied to
//! *static* structures.
//!
//! Wrapping a static zonemap (or imprints) in `Activated` should be ~free
//! where the structure helps (sorted data) and should erase its overhead
//! where it cannot (uniform data), by putting the metadata to sleep after
//! a short trial.

use crate::report::{fmt_us, fmt_x, Report};
use crate::runner::{assert_same_answers, replay, Scale};
use ads_engine::Strategy;
use ads_workloads::{DataSpec, QuerySpec};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new(
        "e12",
        "index-level activation: static structures with and without the wrapper",
        &[
            "distribution",
            "strategy",
            "mean µs/query",
            "probes/query",
            "speedup vs full scan",
        ],
    );
    report.note(format!(
        "{} rows, {} COUNT queries @1% selectivity; fine zones amplify the probe bill",
        scale.rows, scale.queries
    ));

    let queries = QuerySpec::UniformRandom { selectivity: 0.01 }.generate(
        scale.queries,
        scale.domain,
        scale.seed,
    );
    for spec in [DataSpec::Sorted, DataSpec::Uniform] {
        let data = spec.generate(scale.rows, scale.domain, scale.seed);
        let strategies = [
            Strategy::FullScan,
            Strategy::StaticZonemap { zone_rows: 256 },
            Strategy::StaticZonemap { zone_rows: 256 }.activated(),
            Strategy::Imprints {
                values_per_line: 8,
                bins: 64,
            },
            Strategy::Imprints {
                values_per_line: 8,
                bins: 64,
            }
            .activated(),
        ];
        let results: Vec<_> = strategies
            .iter()
            .map(|s| replay(&data, &queries, s))
            .collect();
        assert_same_answers(&results);
        let base = results[0].clone();
        for r in &results {
            report.row(vec![
                spec.label(),
                r.label.clone(),
                fmt_us(r.mean_ns()),
                format!(
                    "{:.0}",
                    r.totals.zones_probed as f64 / r.totals.queries as f64
                ),
                fmt_x(r.speedup_vs(&base)),
            ]);
        }
    }
    report
}

//! E14 — zone masks: secondary value-level skipping for outlier-pinned
//! zones.
//!
//! Sparse large outliers pin every zone's `(min, max)` wide open, so
//! min/max pruning never fires for queries between the base signal and the
//! outliers — no matter the zone size. The 64-bin zone masks (earned as a
//! scan by-product, like all metadata here) restore skipping; imprints get
//! the same effect statically at a far larger metadata cost.

use crate::report::{fmt_bytes, fmt_us, fmt_x, Report};
use crate::runner::{assert_same_answers, replay, Scale};
use ads_core::adaptive::AdaptiveConfig;
use ads_engine::Strategy;
use ads_workloads::{data, queries};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new(
        "e14",
        "zone masks on outlier-pinned data (base < 1% of domain, outlier every 500 rows)",
        &[
            "strategy",
            "mean µs/query",
            "rows scanned/query",
            "metadata",
            "speedup vs full scan",
        ],
    );
    report.note(format!(
        "{} rows; {} mid-range COUNT queries that match nothing but overlap every zone's (min,max)",
        scale.rows, scale.queries
    ));

    let base_width = scale.domain / 128;
    let column = data::with_outliers(scale.rows, base_width, 500, scale.domain, scale.seed);
    // Queries in the dead band between base values and outliers.
    let qs = queries::hotspot_ranges(scale.queries, scale.domain, 0.01, 0.25, 0.2, scale.seed);

    let strategies = [
        Strategy::FullScan,
        Strategy::StaticZonemap { zone_rows: 4096 },
        Strategy::Adaptive(AdaptiveConfig::no_mask()),
        Strategy::Adaptive(AdaptiveConfig::default()),
        Strategy::Imprints {
            values_per_line: 8,
            bins: 64,
        },
    ];
    let labels = [
        "full-scan",
        "static-zonemap(4096)",
        "adaptive (no masks)",
        "adaptive (+masks)",
        "imprints(8x64)",
    ];
    let results: Vec<_> = strategies.iter().map(|s| replay(&column, &qs, s)).collect();
    assert_same_answers(&results);
    let base = results[0].clone();
    for (label, r) in labels.iter().zip(&results) {
        report.row(vec![
            label.to_string(),
            fmt_us(r.mean_ns()),
            format!(
                "{:.0}",
                r.totals.rows_scanned as f64 / r.totals.queries as f64
            ),
            fmt_bytes(r.metadata_bytes),
            fmt_x(r.speedup_vs(&base)),
        ]);
    }
    report
}

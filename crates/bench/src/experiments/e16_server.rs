//! E16 — concurrent service throughput: adaptation modes × reader counts.
//!
//! The paper's protocol is single-writer: inline adaptation serialises
//! every query behind the engine lock no matter how many threads submit.
//! The service decouples the two halves — snapshot-isolated reads,
//! asynchronous adaptation — and this experiment measures what that buys:
//! closed-loop throughput (one client per reader) for inline, async and
//! frozen modes on a sorted (skip-friendly) and a uniform (adversarial)
//! column. Answers are checksummed across modes per client stream, so all
//! speedups are for bit-identical work.

use crate::report::Report;
use crate::runner::Scale;
use crate::server_bench;

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new(
        "e16",
        "service throughput: snapshot readers + async adaptation vs inline lock",
        &[
            "distribution",
            "mode",
            "readers",
            "kq/s",
            "vs inline@1",
            "p50 µs",
            "p99 µs",
            "snapshots",
        ],
    );
    report.note(format!(
        "{} rows, {} COUNT queries/client @5% value-domain selectivity, \
         closed loop (clients = readers); host has {} core(s)",
        scale.rows,
        scale.queries,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));

    let bench = server_bench::run(scale.rows, scale.queries, scale.domain, scale.seed ^ 0xE16);
    for c in &bench.cells {
        let base = bench.qps_of(&c.dist, "inline", 1).unwrap_or(c.qps);
        report.row(vec![
            c.dist.clone(),
            c.mode.to_string(),
            c.readers.to_string(),
            format!("{:.1}", c.qps / 1e3),
            format!("{:.2}x", c.qps / base.max(1e-9)),
            format!("{:.0}", c.p50_ns as f64 / 1e3),
            format!("{:.0}", c.p99_ns as f64 / 1e3),
            c.snapshots_published.to_string(),
        ]);
    }
    report.note(if bench.async_beats_inline() {
        "async @4 readers beats the inline@1 baseline on every distribution".to_string()
    } else {
        "WARNING: async @4 readers did not beat inline@1 on this host".to_string()
    });
    report
}

//! E21 — per-zone metadata tiers: workload grid × tier policies.
//!
//! CSV-parity wrapper over [`crate::sketch_bench`] (the JSON emitter is
//! `sketches_json` → `results/BENCH_sketches.json`): bloom sketches and
//! column imprints are built lazily per zone, chosen from observed
//! predicate shape, and dropped when hitless. Answer checksums are
//! asserted identical across all four tier policies per workload, so
//! every speedup below is for proven-identical work.

use crate::report::{fmt_ms, Report};
use crate::runner::Scale;
use crate::sketch_bench;

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new(
        "e21",
        "per-zone metadata tiers: bloom and imprint sketches, adaptively chosen",
        &[
            "workload",
            "mode",
            "total ms",
            "vs off",
            "rows scanned (M)",
            "built (b/i)",
            "dropped",
            "tier skips",
            "rows excluded (M)",
        ],
    );
    report.note(format!(
        "{} rows, {} queries/cell; checksums asserted equal across modes",
        scale.rows, scale.queries
    ));

    let bench = sketch_bench::run(scale.rows, scale.queries, scale.domain, scale.seed ^ 0xE21);
    for c in &bench.cells {
        let off_ns = bench
            .cells
            .iter()
            .find(|o| o.workload == c.workload && o.mode == "off")
            .map_or(c.elapsed_ns, |o| o.elapsed_ns);
        report.row(vec![
            c.workload.clone(),
            c.mode.clone(),
            fmt_ms(c.elapsed_ns),
            format!("{:.2}x", off_ns as f64 / c.elapsed_ns.max(1) as f64),
            format!("{:.2}", c.rows_scanned as f64 / 1e6),
            format!("{}/{}", c.blooms_built, c.imprints_built),
            c.tiers_dropped.to_string(),
            c.tier_skips.to_string(),
            format!("{:.2}", c.tier_rows_excluded as f64 / 1e6),
        ]);
    }
    report.note(if bench.bloom_wins_a_cell() {
        "the bloom tier wins its home cell outright".to_string()
    } else {
        "WARNING: the bloom tier won no cell on this host".to_string()
    });
    report.note(if bench.imprint_wins_a_cell() {
        "the imprint tier wins its home cell outright".to_string()
    } else {
        "WARNING: the imprint tier won no cell on this host".to_string()
    });
    report.note(if bench.useless_tiers_dropped() {
        "the null cell dropped every tier it built".to_string()
    } else {
        "WARNING: useless tiers survived the null cell".to_string()
    });
    report
}

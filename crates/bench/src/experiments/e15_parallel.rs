//! E15 — parallel scan scaling: query latency vs scan-phase thread count.
//!
//! The executor fans the prune outcome's scan units across worker threads
//! and merges results in unit order, so answers and adaptation are
//! identical at every thread count (asserted here via the answer
//! checksums). This experiment measures the latency side: mean query time
//! at 1/2/4/8 threads over the four seed distribution classes, with a
//! wide predicate so the scan phase dominates.
//!
//! Expect near-linear scaling on a multi-core machine and flat numbers
//! (modulo noise) on a single core — the speedup column states which this
//! machine is.

use crate::report::{fmt_us, fmt_x, Report};
use crate::runner::{assert_same_answers, replay_with_policy, Scale};
use ads_engine::{AggKind, ExecPolicy, LatencyHistogram, Strategy};
use ads_workloads::{DataSpec, QuerySpec};

/// Thread counts measured.
const THREADS: &[usize] = &[1, 2, 4, 8];

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new(
        "e15",
        "parallel scan scaling (threads vs mean latency, answers invariant)",
        &[
            "distribution",
            "threads",
            "effective",
            "mean µs/query",
            "p95 µs",
            "p99 µs",
            "rows scanned/query",
            "speedup vs 1T",
        ],
    );
    report.note(format!(
        "{} rows, {} SUM queries @20% value-domain selectivity, static zonemap(4096); \
         host has {} core(s)",
        scale.rows,
        scale.queries,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));

    let queries = QuerySpec::UniformRandom { selectivity: 0.20 }.generate(
        scale.queries,
        scale.domain,
        scale.seed ^ 0xE15,
    );
    let dists = [
        DataSpec::Sorted,
        DataSpec::AlmostSorted { noise: 0.05 },
        DataSpec::Clustered { clusters: 64 },
        DataSpec::Uniform,
    ];
    for spec in dists {
        let data = spec.generate(scale.rows, scale.domain, scale.seed);
        let mut runs = Vec::with_capacity(THREADS.len());
        for &t in THREADS {
            // A floor low enough that bench-scale scans actually fan out.
            let policy = ExecPolicy {
                threads: t,
                min_rows_per_thread: 16 * 1024,
            };
            runs.push((
                t,
                replay_with_policy(
                    &data,
                    &queries,
                    &Strategy::StaticZonemap { zone_rows: 4096 },
                    AggKind::Sum,
                    policy,
                ),
            ));
        }
        assert_same_answers(&runs.iter().map(|(_, r)| r.clone()).collect::<Vec<_>>());
        let base = &runs[0].1;
        let base_wall = base.totals.wall_ns;
        for (t, r) in &runs {
            // The same histogram the service's stats surface uses, so E15
            // and E16 percentiles are comparable by construction.
            let mut hist = LatencyHistogram::new();
            for m in &r.history {
                hist.record(m.wall_ns);
            }
            report.row(vec![
                spec.label(),
                t.to_string(),
                r.totals.max_threads_used.to_string(),
                fmt_us(r.mean_ns()),
                fmt_us(hist.p95_ns() as f64),
                fmt_us(hist.p99_ns() as f64),
                format!(
                    "{:.0}",
                    r.totals.rows_scanned as f64 / r.totals.queries as f64
                ),
                fmt_x(base_wall as f64 / r.totals.wall_ns.max(1) as f64),
            ]);
        }
    }
    report
}

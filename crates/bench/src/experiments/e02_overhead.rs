//! E2 — "Applying data skipping techniques over non-sorted data can
//! significantly decrease query performance since the extra cost of
//! metadata reads results in no corresponding scan performance gains."
//!
//! Static zonemaps on uniform data at several granularities: every probe
//! is pure overhead; finer zones mean more probes and a bigger slowdown.

use crate::report::{fmt_us, Report};
use crate::runner::{assert_same_answers, replay, Scale};
use ads_engine::Strategy;
use ads_workloads::{DataSpec, QuerySpec};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new(
        "e2",
        "metadata overhead of static zonemaps on uniform (unsorted) data",
        &[
            "strategy",
            "zones probed/query",
            "zones skipped/query",
            "mean µs/query",
            "slowdown vs full scan",
        ],
    );
    report.note(format!(
        "{} uniformly random rows, {} COUNT queries @1% selectivity — skips never fire",
        scale.rows, scale.queries
    ));

    let data = DataSpec::Uniform.generate(scale.rows, scale.domain, scale.seed);
    let queries = QuerySpec::UniformRandom { selectivity: 0.01 }.generate(
        scale.queries,
        scale.domain,
        scale.seed,
    );

    let base = replay(&data, &queries, &Strategy::FullScan);
    let mut results = vec![base.clone()];
    for zone_rows in [65536, 16384, 4096, 1024, 256, 64] {
        results.push(replay(
            &data,
            &queries,
            &Strategy::StaticZonemap { zone_rows },
        ));
    }
    assert_same_answers(&results);

    for r in &results {
        let q = r.totals.queries as f64;
        report.row(vec![
            r.label.clone(),
            format!("{:.0}", r.totals.zones_probed as f64 / q),
            format!("{:.1}", r.totals.zones_skipped as f64 / q),
            fmt_us(r.mean_ns()),
            format!(
                "{:.2}x",
                r.totals.wall_ns as f64 / base.totals.wall_ns.max(1) as f64
            ),
        ]);
    }
    report
}

//! E11 — multi-column conjunctions: skipping composes by intersection.
//!
//! Two-predicate conjunctions over a table whose `time` column is sorted
//! and whose `value` column is uniform: the sorted column's index confines
//! the scan regardless of the other column's disorder.

use crate::report::{fmt_us, Report};
use crate::runner::Scale;
use ads_core::adaptive::AdaptiveConfig;
use ads_core::RangePredicate;
use ads_engine::{AnyPredicate, Strategy, TableSession};
use ads_storage::{Column, Table};
use ads_workloads::{data, queries};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new(
        "e11",
        "multi-column conjunctions: time (sorted) AND value (uniform)",
        &[
            "strategy",
            "mean µs/query",
            "rows scanned/query",
            "zones probed/query",
            "matches total",
        ],
    );
    report.note(format!(
        "{} rows x 2 filtered columns, {} conjunctive COUNT queries (time @1%, value @20%)",
        scale.rows, scale.queries
    ));

    let time_col = data::sorted(scale.rows, scale.domain);
    let value_col = data::uniform(scale.rows, scale.domain, scale.seed);
    let mut table = Table::new("events");
    table
        .add_column("time", Column::from_values(time_col))
        .expect("fresh column");
    table
        .add_column("value", Column::from_values(value_col))
        .expect("fresh column");

    let time_qs = queries::uniform_ranges(scale.queries, scale.domain, 0.01, scale.seed);
    let value_qs = queries::uniform_ranges(scale.queries, scale.domain, 0.2, scale.seed ^ 0x55);

    let strategies = vec![
        Strategy::FullScan,
        Strategy::StaticZonemap { zone_rows: 4096 },
        Strategy::Adaptive(AdaptiveConfig::default()),
        Strategy::Imprints {
            values_per_line: 8,
            bins: 64,
        },
    ];
    let mut checksums = Vec::new();
    for strategy in strategies {
        let mut ts = TableSession::new(table.clone(), &strategy, &["time", "value"])
            .expect("base-coordinate strategy");
        let mut checksum = 0u64;
        for (tq, vq) in time_qs.iter().zip(&value_qs) {
            let conjuncts = [
                (
                    "time",
                    AnyPredicate::I64(RangePredicate::between(tq.lo, tq.hi)),
                ),
                (
                    "value",
                    AnyPredicate::I64(RangePredicate::between(vq.lo, vq.hi)),
                ),
            ];
            let (count, _) = ts.count_conjunction(&conjuncts).expect("valid conjunction");
            checksum = checksum.wrapping_add(count);
        }
        let t = ts.totals();
        report.row(vec![
            strategy.label(),
            fmt_us(t.mean_latency_ns()),
            format!("{:.0}", t.rows_scanned as f64 / t.queries as f64),
            format!("{:.0}", t.zones_probed as f64 / t.queries as f64),
            checksum.to_string(),
        ]);
        checksums.push((strategy.label(), checksum));
    }
    let first = checksums[0].1;
    for (label, c) in &checksums {
        assert_eq!(*c, first, "{label} disagreed on conjunction answers");
    }
    report
}

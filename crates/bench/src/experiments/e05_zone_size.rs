//! E5 — zone-size sensitivity: the tuning knob adaptivity removes.
//!
//! Static zonemap total time as a function of zone size, per distribution;
//! the adaptive zonemap appears as a single extra row — no knob — and
//! should land near each column's per-distribution optimum.

use crate::report::{fmt_ms, Report};
use crate::runner::{assert_same_answers, replay, Scale};
use ads_core::adaptive::AdaptiveConfig;
use ads_engine::Strategy;
use ads_workloads::{DataSpec, QuerySpec};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let distributions = [
        DataSpec::Sorted,
        DataSpec::AlmostSorted { noise: 0.05 },
        DataSpec::Clustered { clusters: 64 },
        DataSpec::Sawtooth { periods: 32 },
        DataSpec::Uniform,
    ];
    let mut headers = vec!["strategy".to_string()];
    headers.extend(distributions.iter().map(|d| format!("{} ms", d.label())));
    let mut report = Report::new(
        "e5",
        "zone-size sensitivity: total query time per static granularity vs adaptive",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    report.note(format!(
        "{} rows, {} COUNT queries @1% selectivity; cells are total query ms",
        scale.rows, scale.queries
    ));

    let queries = QuerySpec::UniformRandom { selectivity: 0.01 }.generate(
        scale.queries,
        scale.domain,
        scale.seed,
    );
    let datasets: Vec<Vec<i64>> = distributions
        .iter()
        .map(|d| d.generate(scale.rows, scale.domain, scale.seed))
        .collect();

    let mut strategies: Vec<Strategy> = [512usize, 2048, 8192, 32768, 131072]
        .iter()
        .map(|&zone_rows| Strategy::StaticZonemap { zone_rows })
        .collect();
    strategies.push(Strategy::Adaptive(AdaptiveConfig::default()));
    strategies.push(Strategy::FullScan);

    // Per distribution, all strategies must agree on answers.
    let mut table: Vec<Vec<String>> = vec![Vec::new(); strategies.len()];
    for data in &datasets {
        let results: Vec<_> = strategies
            .iter()
            .map(|s| replay(data, &queries, s))
            .collect();
        assert_same_answers(&results);
        for (row, r) in table.iter_mut().zip(&results) {
            row.push(fmt_ms(r.totals.wall_ns));
        }
    }
    for (strategy, cells) in strategies.iter().zip(table) {
        let mut row = vec![strategy.label()];
        row.extend(cells);
        report.row(row);
    }
    report
}

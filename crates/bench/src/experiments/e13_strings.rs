//! E13 — extension: data skipping over dictionary-encoded strings.
//!
//! Zonemaps are ubiquitous for string columns in columnar formats
//! (Parquet/ORC min–max statistics). With an order-preserving dictionary,
//! string predicates reduce to code ranges and the whole framework
//! applies; this experiment measures it on a region-batched string column
//! (positionally clustered — the favourable case) and on a shuffled one.

use crate::report::{fmt_us, fmt_x, Report};
use crate::runner::Scale;
use ads_core::adaptive::AdaptiveConfig;
use ads_engine::{Strategy, StringColumnSession};
use ads_rng::StdRng;

const REGIONS: [&str; 16] = [
    "argentina",
    "australia",
    "austria",
    "belgium",
    "brazil",
    "canada",
    "chile",
    "denmark",
    "estonia",
    "finland",
    "france",
    "germany",
    "hungary",
    "iceland",
    "japan",
    "portugal",
];

fn batched(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| REGIONS[(i / 10_000) % REGIONS.len()].to_string())
        .collect()
}

fn shuffled(n: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| REGIONS[rng.gen_range(0..REGIONS.len())].to_string())
        .collect()
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new(
        "e13",
        "extension: string skipping via order-preserving dictionary codes",
        &[
            "layout",
            "strategy",
            "mean µs/query",
            "rows scanned/query",
            "speedup vs full scan",
        ],
    );
    report.note(format!(
        "{} rows, 16 distinct countries, {} mixed string queries (equality / range / prefix)",
        scale.rows, scale.queries
    ));

    let strategies = vec![
        Strategy::FullScan,
        Strategy::StaticZonemap { zone_rows: 4096 },
        Strategy::Adaptive(AdaptiveConfig::default()),
    ];
    for (layout, values) in [
        ("region-batched", batched(scale.rows)),
        ("shuffled", shuffled(scale.rows, scale.seed)),
    ] {
        let mut base_ns = 0u64;
        let mut checksums: Vec<u64> = Vec::new();
        let mut rows: Vec<Vec<String>> = Vec::new();
        for strategy in &strategies {
            let mut session = StringColumnSession::new(&values, strategy);
            let mut checksum = 0u64;
            let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xfeed);
            for q in 0..scale.queries {
                let (c, _) = match q % 3 {
                    0 => session.count_eq(REGIONS[rng.gen_range(0..REGIONS.len())]),
                    1 => {
                        let mut a = REGIONS[rng.gen_range(0..REGIONS.len())];
                        let mut b = REGIONS[rng.gen_range(0..REGIONS.len())];
                        if a > b {
                            std::mem::swap(&mut a, &mut b);
                        }
                        session.count_between(a, b)
                    }
                    _ => {
                        let r = REGIONS[rng.gen_range(0..REGIONS.len())];
                        session.count_prefix(&r[..1])
                    }
                };
                checksum = checksum.wrapping_add(c);
            }
            checksums.push(checksum);
            let t = session.totals();
            if matches!(strategy, Strategy::FullScan) {
                base_ns = t.wall_ns;
            }
            rows.push(vec![
                layout.to_string(),
                session.index_name(),
                fmt_us(t.mean_latency_ns()),
                format!("{:.0}", t.rows_scanned as f64 / t.queries as f64),
                fmt_x(base_ns as f64 / t.wall_ns.max(1) as f64),
            ]);
        }
        assert!(
            checksums.windows(2).all(|w| w[0] == w[1]),
            "string strategies disagreed on {layout}"
        );
        for row in rows {
            report.row(row);
        }
    }
    report
}

//! E19 — zone-local adaptive reorganization: flat vs always vs adaptive.
//!
//! CSV-parity wrapper over [`crate::reorg_bench`] (the JSON emitter is
//! `reorg_json` → `results/BENCH_reorg.json`): hot zones may sort in
//! place for positional skipping; the relative-hotness gate decides
//! per zone. Answers are checksummed across the three layout policies
//! per (distribution, drift) pair, so all speedups are for identical
//! work.

use crate::reorg_bench;
use crate::report::{fmt_ms, Report};
use crate::runner::Scale;

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new(
        "e19",
        "adaptive reorganization: hot zones sort in place for positional skipping",
        &[
            "distribution",
            "drift",
            "mode",
            "total ms",
            "vs flat",
            "rows scanned (M)",
            "promoted",
            "demoted",
            "reorg ms",
        ],
    );
    report.note(format!(
        "{} rows, {} queries/cell; checksums asserted equal across modes",
        scale.rows, scale.queries
    ));

    let bench = reorg_bench::run(scale.rows, scale.queries, scale.domain, scale.seed ^ 0xE19);
    for c in &bench.cells {
        let flat_ns = bench
            .cells
            .iter()
            .find(|f| f.dist == c.dist && f.drift == c.drift && f.mode == "flat")
            .map_or(c.elapsed_ns, |f| f.elapsed_ns);
        report.row(vec![
            c.dist.clone(),
            c.drift.clone(),
            c.mode.clone(),
            fmt_ms(c.elapsed_ns),
            format!("{:.2}x", flat_ns as f64 / c.elapsed_ns.max(1) as f64),
            format!("{:.2}", c.rows_scanned as f64 / 1e6),
            c.zones_promoted.to_string(),
            c.zones_demoted.to_string(),
            fmt_ms(c.reorg_ns),
        ]);
    }
    report.note(if bench.adaptive_beats_flat_on_hot() {
        "adaptive reorganization beats flat skipping on a hot-zone cell".to_string()
    } else {
        "WARNING: adaptive reorganization did not beat flat on this host".to_string()
    });
    report.note(if bench.uniform_never_promotes() {
        "the hotness gate promoted nothing on uniform data".to_string()
    } else {
        "WARNING: the hotness gate promoted zones on uniform data".to_string()
    });
    report
}

//! The kernel benchmark behind `results/BENCH_kernels.json`.
//!
//! Measures the block-structured scan kernels of `ads_storage::scan`
//! against their retained scalar references (`scan::scalar`) across value
//! type × selectivity, and the SoA prune plane of `AdaptiveZonemap`
//! against its retained array-of-structs loop
//! ([`AdaptiveZonemap::prune_via_zones`]) on an all-built zone map. The
//! report renders as machine-readable JSON (the repo's perf-trajectory
//! format, schema `ads-kernel-bench/v1`) and as the markdown table
//! embedded in the README.
//!
//! Run via:
//!
//! ```text
//! cargo run -p ads-bench --release --bin kernels_json
//! cargo run -p ads-bench --release --bin kernels_json -- --rows 4096 --out results/BENCH_kernels.json
//! ```

use crate::microbench::{bench, black_box, section};
use ads_core::adaptive::{AdaptiveConfig, AdaptiveZonemap};
use ads_core::{RangeObservation, RangePredicate, ScanObservation, SkippingIndex};
use ads_rng::StdRng;
use ads_storage::{scan, Bitmap, DataValue, RowRange};
use std::fmt::Write as _;

/// Value domain the generated columns draw from; selectivity percentages
/// translate to predicate widths against this.
const DOMAIN: i64 = 1_000_000;

/// Selectivities measured, in percent of the domain.
const SELECTIVITIES: [u32; 4] = [1, 10, 50, 100];

/// One kernel × type × selectivity measurement.
#[derive(Debug, Clone)]
pub struct KernelRow {
    /// Kernel name (`count_in_range`, `sum_in_range`, ...).
    pub kernel: &'static str,
    /// Element type name (`i64`, `f64`, `f32`).
    pub ty: &'static str,
    /// Predicate selectivity in percent of the domain.
    pub selectivity_pct: u32,
    /// Rows scanned per call.
    pub rows: usize,
    /// Best-of-samples per-row time of the block kernel.
    pub block_ns_per_row: f64,
    /// Best-of-samples per-row time of the scalar reference.
    pub scalar_ns_per_row: f64,
}

impl KernelRow {
    /// Scalar-over-block time ratio (>1 means the block kernel is faster).
    pub fn speedup(&self) -> f64 {
        self.scalar_ns_per_row / self.block_ns_per_row
    }
}

/// One prune-loop measurement.
#[derive(Debug, Clone)]
pub struct PruneRow {
    /// `soa_plane` or `aos_reference`.
    pub impl_name: &'static str,
    /// Zones probed per prune call.
    pub zones: usize,
    /// Best-of-samples per-zone probe time.
    pub ns_per_zone: f64,
}

/// The full benchmark report.
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// Rows per scanned column.
    pub rows: usize,
    /// Scan-kernel measurements.
    pub kernels: Vec<KernelRow>,
    /// Prune-loop measurements.
    pub prune: Vec<PruneRow>,
}

/// Formats an `f64` for JSON: finite, fixed precision, never NaN/inf
/// (which JSON cannot represent).
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "null".to_string()
    }
}

impl KernelReport {
    /// Renders the report as the `ads-kernel-bench/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str("  \"schema\": \"ads-kernel-bench/v1\",\n");
        let _ = writeln!(s, "  \"rows\": {},", self.rows);
        s.push_str("  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"kernel\": \"{}\", \"type\": \"{}\", \"selectivity_pct\": {}, \"rows\": {}, \"block_ns_per_row\": {}, \"scalar_ns_per_row\": {}, \"speedup\": {}}}",
                k.kernel,
                k.ty,
                k.selectivity_pct,
                k.rows,
                json_num(k.block_ns_per_row),
                json_num(k.scalar_ns_per_row),
                json_num(k.speedup()),
            );
            s.push_str(if i + 1 < self.kernels.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n");
        s.push_str("  \"prune\": [\n");
        for (i, p) in self.prune.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"impl\": \"{}\", \"zones\": {}, \"ns_per_zone\": {}}}",
                p.impl_name,
                p.zones,
                json_num(p.ns_per_zone),
            );
            s.push_str(if i + 1 < self.prune.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Renders the README's kernel-performance table: per-row times at 10%
    /// selectivity plus the prune-loop comparison.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "| Kernel | Type | Block ns/row | Scalar ns/row | Speedup |"
        );
        let _ = writeln!(s, "|---|---|---:|---:|---:|");
        for k in self.kernels.iter().filter(|k| k.selectivity_pct == 10) {
            let _ = writeln!(
                s,
                "| `{}` | {} | {:.3} | {:.3} | {:.2}x |",
                k.kernel,
                k.ty,
                k.block_ns_per_row,
                k.scalar_ns_per_row,
                k.speedup()
            );
        }
        let _ = writeln!(s);
        let _ = writeln!(s, "| Prune loop | Zones | ns/zone probe |");
        let _ = writeln!(s, "|---|---:|---:|");
        for p in &self.prune {
            let _ = writeln!(
                s,
                "| {} | {} | {:.2} |",
                p.impl_name, p.zones, p.ns_per_zone
            );
        }
        s
    }
}

/// A column of `rows` values drawn uniformly from `[0, DOMAIN)`.
fn gen_column(rows: usize, seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..rows).map(|_| rng.gen_range(0..DOMAIN)).collect()
}

/// The inclusive predicate bound selecting ~`pct`% of `[0, DOMAIN)`.
fn sel_bound(pct: u32) -> i64 {
    (DOMAIN * pct as i64) / 100 - 1
}

/// Measures every kernel over one typed column; `cast` maps the canonical
/// integer column into the measured type.
fn bench_type<T: DataValue>(
    ty: &'static str,
    base: &[i64],
    cast: impl Fn(i64) -> T,
    out: &mut Vec<KernelRow>,
) {
    let data: Vec<T> = base.iter().map(|&v| cast(v)).collect();
    let rows = data.len();
    let lo = cast(0);
    for pct in SELECTIVITIES {
        let hi = cast(sel_bound(pct));
        section(&format!("{ty} @ {pct}% selectivity ({rows} rows)"));
        let mut push = |kernel: &'static str, block_ns: f64, scalar_ns: f64| {
            out.push(KernelRow {
                kernel,
                ty,
                selectivity_pct: pct,
                rows,
                block_ns_per_row: block_ns / rows as f64,
                scalar_ns_per_row: scalar_ns / rows as f64,
            });
        };

        let b = bench("count_in_range/block", || {
            scan::count_in_range(black_box(&data), lo, hi)
        });
        let r = bench("count_in_range/scalar", || {
            scan::scalar::count_in_range(black_box(&data), lo, hi)
        });
        push("count_in_range", b.best_ns, r.best_ns);

        let b = bench("count_with_minmax/block", || {
            scan::count_in_range_with_minmax(black_box(&data), lo, hi)
        });
        let r = bench("count_with_minmax/scalar", || {
            scan::scalar::count_in_range_with_minmax(black_box(&data), lo, hi)
        });
        push("count_in_range_with_minmax", b.best_ns, r.best_ns);

        let b = bench("sum_in_range/block", || {
            scan::sum_in_range(black_box(&data), lo, hi)
        });
        let r = bench("sum_in_range/scalar", || {
            scan::scalar::sum_in_range(black_box(&data), lo, hi)
        });
        push("sum_in_range", b.best_ns, r.best_ns);

        let mut positions = Vec::with_capacity(rows);
        let b = bench("collect_in_range/block", || {
            positions.clear();
            scan::collect_in_range(black_box(&data), 0, lo, hi, &mut positions);
            positions.len()
        });
        let r = bench("collect_in_range/scalar", || {
            positions.clear();
            scan::scalar::collect_in_range(black_box(&data), 0, lo, hi, &mut positions);
            positions.len()
        });
        push("collect_in_range", b.best_ns, r.best_ns);

        let mut bm = Bitmap::new(rows);
        let b = bench("fill_bitmap_in_range/block", || {
            scan::fill_bitmap_in_range(black_box(&data), 0, lo, hi, &mut bm);
            bm.len()
        });
        let r = bench("fill_bitmap_in_range/scalar", || {
            scan::scalar::fill_bitmap_in_range(black_box(&data), 0, lo, hi, &mut bm);
            bm.len()
        });
        push("fill_bitmap_in_range", b.best_ns, r.best_ns);

        let b = bench("min_max_in_range/block", || {
            scan::min_max_in_range(black_box(&data), lo, hi)
        });
        let r = bench("min_max_in_range/scalar", || {
            scan::scalar::min_max_in_range(black_box(&data), lo, hi)
        });
        push("min_max_in_range", b.best_ns, r.best_ns);
    }
}

/// Builds an adaptive zonemap over a sorted column with every zone Built —
/// the steady state the prune loop is measured in.
fn all_built_zonemap(zones: usize, rows_per_zone: usize) -> AdaptiveZonemap<i64> {
    let len = zones * rows_per_zone;
    let config = AdaptiveConfig {
        target_zone_rows: rows_per_zone,
        min_zone_rows: 2,
        max_zone_rows: rows_per_zone.max(2),
        revival_base_queries: None,
        ..AdaptiveConfig::lazy_only()
    };
    let mut zm = AdaptiveZonemap::new(len, config);
    // Sorted column: zone z covers values [z*rows_per_zone, (z+1)*rows_per_zone).
    let pred = RangePredicate::all();
    let out = zm.prune(&pred);
    let ranges = out
        .units()
        .iter()
        .map(|u| {
            RangeObservation::new(
                RowRange::new(u.start, u.end),
                u.len(),
                u.start as i64,
                (u.end - 1) as i64,
            )
        })
        .collect();
    zm.observe(&ScanObservation {
        predicate: pred,
        ranges,
    });
    zm
}

/// Measures the SoA plane prune against the retained AoS loop.
fn bench_prune(zones: usize, rows_per_zone: usize, out: &mut Vec<PruneRow>) {
    section(&format!("prune: {zones} built zones (sorted column)"));
    let zm = all_built_zonemap(zones, rows_per_zone);
    // ~1% of zones overlap this predicate; the rest exercise the
    // bounds-exclusion fast path, which is where the layouts differ.
    let pred = RangePredicate::between(0, (zones as i64 * rows_per_zone as i64) / 100);

    let mut plane_zm = zm.clone();
    let b = bench("prune/soa_plane", || {
        black_box(plane_zm.prune(black_box(&pred))).zones_probed
    });
    out.push(PruneRow {
        impl_name: "soa_plane",
        zones,
        ns_per_zone: b.best_ns / zones as f64,
    });

    let mut aos_zm = zm;
    let r = bench("prune/aos_reference", || {
        black_box(aos_zm.prune_via_zones(black_box(&pred))).zones_probed
    });
    out.push(PruneRow {
        impl_name: "aos_reference",
        zones,
        ns_per_zone: r.best_ns / zones as f64,
    });
}

/// Runs the full kernel benchmark at `rows` rows per column and
/// `prune_zones` zones in the prune comparison.
pub fn run(rows: usize, prune_zones: usize) -> KernelReport {
    let base = gen_column(rows, 0xAD50_0001);
    let mut kernels = Vec::new();
    bench_type("i64", &base, |v| v, &mut kernels);
    bench_type("f64", &base, |v| v as f64, &mut kernels);
    bench_type("f32", &base, |v| v as f32, &mut kernels);

    let mut prune = Vec::new();
    // 16 rows per zone keeps the map metadata-bound: the point is to time
    // the probe loop, not the scans it saves.
    bench_prune(prune_zones, 16, &mut prune);

    KernelReport {
        rows,
        kernels,
        prune,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_built_zonemap_is_fully_built() {
        let zm = all_built_zonemap(64, 16);
        let (unbuilt, built, dead) = zm.state_counts();
        assert_eq!((unbuilt, built, dead), (0, 64, 0));
        assert_eq!(zm.num_zones(), 64);
    }

    #[test]
    fn json_report_shape() {
        let report = KernelReport {
            rows: 128,
            kernels: vec![KernelRow {
                kernel: "count_in_range",
                ty: "i64",
                selectivity_pct: 10,
                rows: 128,
                block_ns_per_row: 0.5,
                scalar_ns_per_row: 1.0,
            }],
            prune: vec![PruneRow {
                impl_name: "soa_plane",
                zones: 64,
                ns_per_zone: 0.75,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"ads-kernel-bench/v1\""));
        assert!(json.contains("\"speedup\": 2.0000"));
        assert!(json.contains("\"ns_per_zone\": 0.7500"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let md = report.to_markdown();
        assert!(md.contains("| `count_in_range` | i64 |"));
        assert!(md.contains("soa_plane"));
    }

    #[test]
    fn json_num_never_emits_nonfinite() {
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
        assert_eq!(json_num(1.25), "1.2500");
    }
}

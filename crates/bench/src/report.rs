//! Plain-text report tables: what the harness prints and saves as CSV.

use std::fmt::Write as _;
use std::path::Path;

/// One experiment's output table.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id, e.g. `"e3"`.
    pub id: String,
    /// Human title, e.g. the claim being reproduced.
    pub title: String,
    /// Free-form notes printed under the title.
    pub notes: Vec<String>,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            notes: Vec::new(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Appends a data row.
    ///
    /// # Panics
    /// Panics if the arity differs from the headers.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the aligned plain-text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {}", self.id.to_uppercase(), self.title);
        for note in &self.notes {
            let _ = writeln!(out, "   {note}");
        }
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::from("  ");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{cell:>w$}  ", w = w);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len() + 2;
        let _ = writeln!(out, "  {}", "-".repeat(total.saturating_sub(2)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(esc).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Writes `<dir>/<id>.csv`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.csv", self.id)), self.to_csv())
    }
}

/// Formats nanoseconds as adaptive-precision milliseconds.
pub fn fmt_ms(ns: u64) -> String {
    let ms = ns as f64 / 1e6;
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.2}")
    } else {
        format!("{ms:.4}")
    }
}

/// Formats nanoseconds as microseconds.
pub fn fmt_us(ns: f64) -> String {
    format!("{:.1}", ns / 1e3)
}

/// Formats a speedup factor.
pub fn fmt_x(f: f64) -> String {
    format!("{f:.2}x")
}

/// Formats bytes human-readably.
pub fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{:.1}MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("e0", "sample", &["name", "value"]);
        r.note("a note");
        r.row(vec!["foo".into(), "1".into()]);
        r.row(vec!["barbaz".into(), "22".into()]);
        r
    }

    #[test]
    fn render_aligns_columns() {
        let text = sample().render();
        assert!(text.contains("E0 — sample"));
        assert!(text.contains("a note"));
        assert!(text.contains("foo"));
        assert!(text.contains("barbaz"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut r = Report::new("x", "t", &["a", "b"]);
        r.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes() {
        let mut r = Report::new("x", "t", &["a"]);
        r.row(vec!["has,comma".into()]);
        let csv = r.to_csv();
        assert!(csv.contains("\"has,comma\""));
    }

    #[test]
    fn write_csv_to_tempdir() {
        let dir = std::env::temp_dir().join("ads_report_test");
        sample().write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("e0.csv")).unwrap();
        assert!(content.starts_with("name,value"));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ms(2_500_000), "2.50");
        assert_eq!(fmt_ms(250_000_000), "250");
        assert_eq!(fmt_ms(250_000), "0.2500");
        assert_eq!(fmt_us(1500.0), "1.5");
        assert_eq!(fmt_x(1.4), "1.40x");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0MiB");
    }
}

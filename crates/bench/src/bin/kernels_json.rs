//! Emits the machine-readable kernel benchmark baseline.
//!
//! ```text
//! kernels_json                                   # 1M rows, 64k zones -> results/BENCH_kernels.json
//! kernels_json --rows 4096 --zones 1024          # smoke scale
//! kernels_json --out path.json --markdown        # custom path + README table on stdout
//! ```

#![forbid(unsafe_code)]

use ads_bench::kernels;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!("usage: kernels_json [--rows N] [--zones N] [--out PATH] [--markdown]");
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut rows: usize = 1 << 20;
    let mut zones: usize = 1 << 16;
    let mut out_path = PathBuf::from("results/BENCH_kernels.json");
    let mut markdown = false;

    let mut i = 0;
    while i < args.len() {
        let take_value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--rows" => rows = take_value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--zones" => zones = take_value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--out" => out_path = PathBuf::from(take_value(&mut i)),
            "--markdown" => markdown = true,
            _ => usage(),
        }
        i += 1;
    }
    if rows == 0 || zones == 0 {
        usage();
    }

    let report = kernels::run(rows, zones);

    if let Some(dir) = out_path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: could not create {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("error: could not write {}: {e}", out_path.display());
        std::process::exit(1);
    }
    println!("\nwrote {}", out_path.display());

    if markdown {
        println!("\n{}", report.to_markdown());
    }
}

//! The experiment harness CLI.
//!
//! ```text
//! harness all                  # every experiment at default scale
//! harness e3 e4                # selected experiments
//! harness e3 --rows 10000000   # override sizing
//! harness all --quick          # smoke-scale run
//! harness calibrate            # print the measured cost model
//! harness --out results        # also write CSVs (default: results/)
//! ```

#![forbid(unsafe_code)]

use ads_bench::experiments;
use ads_bench::runner::Scale;
use std::path::PathBuf;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: harness <e1..e21|all|calibrate>... [--rows N] [--queries N] [--domain N] [--seed N] [--quick] [--out DIR] [--no-csv]"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::default();
    let mut out_dir = PathBuf::from("results");
    let mut write_csv = true;
    let mut calibrate = false;

    let mut i = 0;
    while i < args.len() {
        let arg = args[i].clone();
        let take_value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match arg.as_str() {
            "--rows" => scale.rows = take_value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--queries" => scale.queries = take_value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--domain" => scale.domain = take_value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => scale.seed = take_value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--quick" => {
                let q = Scale::quick();
                scale.rows = q.rows;
                scale.queries = q.queries;
            }
            "--out" => out_dir = PathBuf::from(take_value(&mut i)),
            "--no-csv" => write_csv = false,
            "all" => ids.extend(experiments::ALL.iter().map(|s| s.to_string())),
            "calibrate" => calibrate = true,
            id if experiments::ALL.contains(&id) => ids.push(id.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    if ids.is_empty() && !calibrate {
        usage();
    }

    if calibrate {
        let model = ads_core::CostModel::calibrate(1 << 22);
        println!(
            "cost model: one zone probe ~= {:.1} tuple scans (min profitable zone: {} rows)",
            model.probe_cost_tuples,
            model.min_profitable_zone_rows()
        );
    }

    ids.dedup();
    if !ids.is_empty() {
        println!(
            "scale: {} rows, {} queries, domain {}, seed {}\n",
            scale.rows, scale.queries, scale.domain, scale.seed
        );
    }
    for id in &ids {
        let t0 = Instant::now();
        let report = experiments::run(id, scale).unwrap_or_else(|| usage());
        print!("{}", report.render());
        println!("  [{id} completed in {:.1}s]\n", t0.elapsed().as_secs_f64());
        if write_csv {
            if let Err(e) = report.write_csv(&out_dir) {
                eprintln!("warning: could not write {id}.csv: {e}");
            }
        }
    }
}

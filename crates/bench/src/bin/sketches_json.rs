//! Emits the machine-readable metadata-tier baseline (E21).
//!
//! ```text
//! sketches_json                               # 2M rows, 600 q/cell -> results/BENCH_sketches.json
//! sketches_json --rows 20000 --queries 40     # smoke scale
//! sketches_json --out path.json --markdown    # custom path + README table on stdout
//! ```

#![forbid(unsafe_code)]

use ads_bench::sketch_bench;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!("usage: sketches_json [--rows N] [--queries N] [--out PATH] [--markdown]");
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut rows: usize = 2_000_000;
    let mut queries: usize = 600;
    let mut out_path = PathBuf::from("results/BENCH_sketches.json");
    let mut markdown = false;

    let mut i = 0;
    while i < args.len() {
        let take_value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--rows" => rows = take_value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--queries" => queries = take_value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--out" => out_path = PathBuf::from(take_value(&mut i)),
            "--markdown" => markdown = true,
            _ => usage(),
        }
        i += 1;
    }
    if rows == 0 || queries == 0 {
        usage();
    }

    let report = sketch_bench::run(rows, queries, 1_000_000, 42);

    if let Some(dir) = out_path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: could not create {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("error: could not write {}: {e}", out_path.display());
        std::process::exit(1);
    }
    println!("\nwrote {}", out_path.display());

    if markdown {
        println!("\n{}", report.to_markdown());
    }
    if !report.bloom_wins_a_cell() {
        eprintln!("note: the bloom tier did not win any cell");
    }
    if !report.imprint_wins_a_cell() {
        eprintln!("note: the imprint tier did not win any cell");
    }
    if !report.adaptive_within_factor(1.25) {
        eprintln!("note: the adaptive chooser exceeded 1.25x the per-cell best");
    }
    if !report.useless_tiers_dropped() {
        eprintln!("note: tiers survived the null cell");
    }
}

//! Emits the machine-readable mutation benchmark (E20).
//!
//! ```text
//! mutations_json                               # 1M rows, 300 q/cell -> results/BENCH_mutations.json
//! mutations_json --rows 4000 --queries 12      # smoke scale
//! mutations_json --out path.json --markdown    # custom path + README table on stdout
//! ```

#![forbid(unsafe_code)]

use ads_bench::mutation_bench;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!("usage: mutations_json [--rows N] [--queries N] [--out PATH] [--markdown]");
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut rows: usize = 1_000_000;
    let mut queries: usize = 300;
    let mut out_path = PathBuf::from("results/BENCH_mutations.json");
    let mut markdown = false;

    let mut i = 0;
    while i < args.len() {
        let take_value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--rows" => rows = take_value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--queries" => queries = take_value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--out" => out_path = PathBuf::from(take_value(&mut i)),
            "--markdown" => markdown = true,
            _ => usage(),
        }
        i += 1;
    }
    if rows == 0 || queries == 0 {
        usage();
    }

    let report = mutation_bench::run(rows, queries, 1_000_000, 42);

    if let Some(dir) = out_path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: could not create {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("error: could not write {}: {e}", out_path.display());
        std::process::exit(1);
    }
    println!("\nwrote {}", out_path.display());

    if markdown {
        println!("\n{}", report.to_markdown());
    }
    if !report.adaptive_beats_frozen_on_update_hotspot() {
        eprintln!("note: adaptive did not beat frozen on the update-hotspot scenario");
    }
}

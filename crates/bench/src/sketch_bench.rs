//! E21 machinery — per-zone metadata tiers (bloom sketches and column
//! imprints), emitted as the machine-readable `ads-sketch-bench/v1`
//! document (`results/BENCH_sketches.json`).
//!
//! The measurement is the engine's inline loop (prune → scan → observe →
//! maintain), so every mode pays its tier builds, probes, and drops on
//! the query path. Four workload cells are each swept over four tier
//! policies:
//!
//! * **points** — equality probes on uniform data: zone bounds are wide,
//!   so `(min, max)` never skips, but almost no zone actually holds the
//!   probed value. The bloom tier's home turf.
//! * **ranges-sawtooth** — mid-selectivity ranges on sawtooth data whose
//!   ascending runs are much shorter than a zone: zone bounds cover the
//!   whole domain, but per-cache-line bounds are tight. The imprint
//!   tier's home turf.
//! * **mixed** — points and ranges interleaved 3:2 on uniform data; the
//!   per-zone chooser must read the predicate shape and pick the paying
//!   tier.
//! * **ranges-uniform** — mid-selectivity ranges on uniform data: no
//!   sub-zone structure exists for any tier to exploit. The null cell —
//!   tiers must be dropped and the drop-side overhead must stay noise.
//!
//! Tier modes: `off` (plain adaptive zonemap), `bloom` / `imprint`
//! (forced single-tier ablations), and `adaptive` (the shipped
//! shape-driven chooser). Two things are under test. **Equivalence** —
//! per-cell answer checksums (counts plus exact sum bit patterns) must
//! be identical across all four modes; `run` asserts it, the report
//! re-checks it. **The policy** — each tier must win the cell built for
//! it, the chooser must stay within a small factor of the best forced
//! mode everywhere, and the null cell must drop its tiers.

use ads_core::adaptive::{AdaptiveConfig, AdaptiveZonemap, TierMode};
use ads_core::RangePredicate;
use ads_engine::{execute_with_policy, AggKind, ExecPolicy};
use ads_workloads::{data, queries};
use std::fmt::Write;
use std::time::Instant;

/// Tier policies each workload cell is swept over.
pub const MODES: &[&str] = &["off", "bloom", "imprint", "adaptive"];

/// Workload cell labels, in grid order.
pub const WORKLOADS: &[&str] = &["points", "ranges-sawtooth", "mixed", "ranges-uniform"];

/// One measured (workload, mode) cell.
#[derive(Debug, Clone)]
pub struct SketchCell {
    /// Workload label (see [`WORKLOADS`]).
    pub workload: String,
    /// Tier policy label (see [`MODES`]).
    pub mode: String,
    /// Queries answered.
    pub queries: u64,
    /// Total wall time of the query loop, tier maintenance included.
    pub elapsed_ns: u64,
    /// Rows the scan phase actually touched across all queries.
    pub rows_scanned: u64,
    /// Bloom sketches built.
    pub blooms_built: u64,
    /// Imprint sketches built.
    pub imprints_built: u64,
    /// Tiers dropped by the feedback policy.
    pub tiers_dropped: u64,
    /// Tier consultations that excluded at least one row.
    pub tier_skips: u64,
    /// Rows excluded by tiers that `(min, max)` bounds could not.
    pub tier_rows_excluded: u64,
    /// Zones still carrying a tier when the stream ended.
    pub zones_tiered_end: u64,
    /// Order-independent answer checksum (counts + exact sum bits);
    /// must agree across modes within a workload.
    pub checksum: u64,
}

/// The full E21 result set.
#[derive(Debug, Clone)]
pub struct SketchBenchReport {
    /// Rows per column.
    pub rows: usize,
    /// Queries per cell.
    pub queries_per_cell: usize,
    /// Value domain.
    pub domain: i64,
    /// Measured cells, mode-major within each workload.
    pub cells: Vec<SketchCell>,
}

impl SketchBenchReport {
    /// Cell lookup by coordinates.
    fn cell(&self, workload: &str, mode: &str) -> Option<&SketchCell> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.mode == mode)
    }

    /// True when the forced `mode` is strictly faster than `off` and the
    /// other forced tier on at least one workload cell — with the skip
    /// counters showing the win came from the tier, not timing noise.
    /// The `adaptive` chooser is excluded from the comparison: on a
    /// cell's home turf it picks the same tier and does identical work,
    /// so forced-vs-adaptive ordering is a coin flip.
    fn wins_some_cell(&self, mode: &str) -> bool {
        WORKLOADS.iter().any(|w| {
            self.cell(w, mode).is_some_and(|c| {
                c.tier_skips > 0
                    && MODES
                        .iter()
                        .filter(|&&m| m != mode && m != "adaptive")
                        .filter_map(|m| self.cell(w, m))
                        .all(|other| c.elapsed_ns < other.elapsed_ns)
            })
        })
    }

    /// Acceptance: the bloom tier wins at least one cell outright.
    pub fn bloom_wins_a_cell(&self) -> bool {
        self.wins_some_cell("bloom")
    }

    /// Acceptance: the imprint tier wins at least one cell outright.
    pub fn imprint_wins_a_cell(&self) -> bool {
        self.wins_some_cell("imprint")
    }

    /// Acceptance: in every workload cell the shape-driven chooser stays
    /// within `factor` of the best policy for that cell.
    pub fn adaptive_within_factor(&self, factor: f64) -> bool {
        WORKLOADS.iter().all(|w| {
            let Some(adaptive) = self.cell(w, "adaptive") else {
                return false;
            };
            let best = MODES
                .iter()
                .filter_map(|m| self.cell(w, m))
                .map(|c| c.elapsed_ns)
                .min()
                .unwrap_or(0);
            adaptive.elapsed_ns as f64 <= factor * best as f64
        })
    }

    /// Acceptance: on the null cell (uniform ranges) every enabled mode
    /// builds tiers, finds them hitless, and drops them.
    pub fn useless_tiers_dropped(&self) -> bool {
        MODES.iter().filter(|&&m| m != "off").all(|m| {
            self.cell("ranges-uniform", m)
                .is_some_and(|c| c.tiers_dropped > 0)
        })
    }

    /// Acceptance: answer checksums agree across all four modes in
    /// every workload cell.
    pub fn answers_identical_across_modes(&self) -> bool {
        self.cells.iter().all(|c| {
            MODES
                .iter()
                .filter_map(|m| self.cell(&c.workload, m))
                .all(|other| other.checksum == c.checksum)
        })
    }

    /// Renders the `ads-sketch-bench/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str("  \"schema\": \"ads-sketch-bench/v1\",\n");
        let _ = writeln!(s, "  \"rows\": {},", self.rows);
        let _ = writeln!(s, "  \"queries_per_cell\": {},", self.queries_per_cell);
        let _ = writeln!(s, "  \"domain\": {},", self.domain);
        let _ = writeln!(s, "  \"bloom_wins_a_cell\": {},", self.bloom_wins_a_cell());
        let _ = writeln!(
            s,
            "  \"imprint_wins_a_cell\": {},",
            self.imprint_wins_a_cell()
        );
        let _ = writeln!(
            s,
            "  \"adaptive_within_1_25_of_best\": {},",
            self.adaptive_within_factor(1.25)
        );
        let _ = writeln!(
            s,
            "  \"useless_tiers_dropped\": {},",
            self.useless_tiers_dropped()
        );
        let _ = writeln!(
            s,
            "  \"answers_identical_across_modes\": {},",
            self.answers_identical_across_modes()
        );
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"workload\": \"{}\", \"mode\": \"{}\", \"queries\": {}, \
                 \"elapsed_ns\": {}, \"rows_scanned\": {}, \"blooms_built\": {}, \
                 \"imprints_built\": {}, \"tiers_dropped\": {}, \"tier_skips\": {}, \
                 \"tier_rows_excluded\": {}, \"zones_tiered_end\": {}, \"checksum\": {}}}",
                c.workload,
                c.mode,
                c.queries,
                c.elapsed_ns,
                c.rows_scanned,
                c.blooms_built,
                c.imprints_built,
                c.tiers_dropped,
                c.tier_skips,
                c.tier_rows_excluded,
                c.zones_tiered_end,
                c.checksum,
            );
            s.push_str(if i + 1 < self.cells.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Renders the README's metadata-tier table.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "| Workload | Mode | total ms | Mrows scanned | built (b/i) | \
             dropped | tier skips | Mrows excluded |"
        );
        let _ = writeln!(s, "|---|---|---:|---:|---:|---:|---:|---:|");
        for c in &self.cells {
            let _ = writeln!(
                s,
                "| {} | {} | {:.1} | {:.2} | {}/{} | {} | {} | {:.2} |",
                c.workload,
                c.mode,
                c.elapsed_ns as f64 / 1e6,
                c.rows_scanned as f64 / 1e6,
                c.blooms_built,
                c.imprints_built,
                c.tiers_dropped,
                c.tier_skips,
                c.tier_rows_excluded as f64 / 1e6,
            );
        }
        s
    }
}

/// The four tier policies as zonemap configurations. Structural
/// adaptation (split / merge / deactivate) is pinned off in *every*
/// mode: these workloads are built so `(min, max)` bounds cannot skip,
/// which makes the structural policies churn the layout (merging
/// never-skipping zones, splitting without bound improvement) and clear
/// tiers mid-window — identically in all modes, but drowning the tier
/// signal the grid exists to measure. The tier × structural-adaptation
/// interplay is covered by `tests/metadata_tiers.rs`, which runs with
/// structural adaptation on.
fn mode_config(mode: &str) -> AdaptiveConfig {
    let tier_mode = match mode {
        "off" => TierMode::Off,
        "bloom" => TierMode::Bloom,
        "imprint" => TierMode::Imprint,
        "adaptive" => TierMode::Adaptive,
        other => unreachable!("unknown mode {other}"),
    };
    AdaptiveConfig {
        tier_mode,
        enable_split: false,
        enable_merge: false,
        enable_deactivate: false,
        ..AdaptiveConfig::default()
    }
}

/// The query stream for one workload cell.
fn stream_for(workload: &str, count: usize, domain: i64, seed: u64) -> Vec<queries::RangeQuery> {
    match workload {
        "points" => queries::point_queries(count, domain, seed),
        // Mid-selectivity ranges; zone bounds on sawtooth/uniform data
        // cover the whole domain, so skipping must come from tiers.
        "ranges-sawtooth" | "ranges-uniform" => queries::uniform_ranges(count, domain, 0.05, seed),
        // 3:2 points to ranges, so the per-zone point fraction sits
        // robustly above the chooser threshold where bloom pays.
        "mixed" => {
            let points = queries::point_queries(count, domain, seed);
            let ranges = queries::uniform_ranges(count, domain, 0.05, seed ^ 0x9E37);
            (0..count)
                .map(|i| if i % 5 < 3 { points[i] } else { ranges[i] })
                .collect()
        }
        other => unreachable!("unknown workload {other}"),
    }
}

/// The column for one workload cell.
fn data_for(workload: &str, rows: usize, domain: i64, seed: u64) -> Vec<i64> {
    match workload {
        // Ascending runs of ~400 rows: far shorter than a zone, far
        // longer than an imprint cache line — zone bounds are useless,
        // line bounds are tight.
        "ranges-sawtooth" => data::sawtooth(rows, (rows / 400).max(2), domain),
        "points" | "mixed" | "ranges-uniform" => data::uniform(rows, domain, seed),
        other => unreachable!("unknown workload {other}"),
    }
}

/// Runs one (workload, mode) cell through the engine's inline loop,
/// alternating COUNT and SUM so both the count path and the
/// order-sensitive aggregation path are exercised.
fn run_cell(
    data: &[i64],
    stream: &[queries::RangeQuery],
    workload: &str,
    mode: &str,
) -> SketchCell {
    let mut zm = AdaptiveZonemap::new(data.len(), mode_config(mode));
    let policy = ExecPolicy::sequential();
    let mut checksum = 0u64;
    let mut rows_scanned = 0u64;
    let t0 = Instant::now();
    for (i, q) in stream.iter().enumerate() {
        let pred = RangePredicate::between(q.lo, q.hi);
        let agg = if i % 2 == 0 {
            AggKind::Count
        } else {
            AggKind::Sum
        };
        let (ans, m) = execute_with_policy(data, &mut zm, pred, agg, &policy);
        checksum = checksum
            .wrapping_mul(0x0100_0000_01B3)
            .wrapping_add(ans.count)
            .wrapping_add(ans.sum.map_or(0, f64::to_bits));
        rows_scanned += m.rows_scanned as u64;
    }
    let elapsed_ns = t0.elapsed().as_nanos() as u64;
    let st = zm.tier_stats();
    SketchCell {
        workload: workload.to_string(),
        mode: mode.to_string(),
        queries: stream.len() as u64,
        elapsed_ns,
        rows_scanned,
        blooms_built: st.blooms_built,
        imprints_built: st.imprints_built,
        tiers_dropped: st.tiers_dropped,
        tier_skips: st.tier_skips,
        tier_rows_excluded: st.tier_rows_excluded,
        zones_tiered_end: zm.zones_tiered() as u64,
        checksum,
    }
}

/// Runs the full grid: [`WORKLOADS`] × [`MODES`], asserting answer
/// equivalence across modes in every workload cell.
pub fn run(rows: usize, queries_per_cell: usize, domain: i64, seed: u64) -> SketchBenchReport {
    let mut report = SketchBenchReport {
        rows,
        queries_per_cell,
        domain,
        cells: Vec::new(),
    };

    for &workload in WORKLOADS {
        let data = data_for(workload, rows, domain, seed);
        let stream = stream_for(workload, queries_per_cell, domain, seed.wrapping_add(1));
        let mut reference: Option<u64> = None;
        for &mode in MODES {
            eprintln!("  e21: {workload} {mode}");
            let cell = run_cell(&data, &stream, workload, mode);
            match reference {
                Some(want) => assert_eq!(
                    cell.checksum, want,
                    "{workload}/{mode}: answers diverged from off"
                ),
                None => reference = Some(cell.checksum),
            }
            report.cells.push(cell);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_grid_runs_and_serialises() {
        let report = run(40_000, 24, 10_000, 7);
        assert_eq!(report.cells.len(), WORKLOADS.len() * MODES.len());
        assert!(report.answers_identical_across_modes());
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"ads-sketch-bench/v1\""));
        assert!(json.contains("\"mode\": \"adaptive\""));
        assert!(!report.to_markdown().is_empty());
        for c in &report.cells {
            assert_eq!(c.queries, 24);
            assert!(c.elapsed_ns > 0);
            if c.mode == "off" {
                assert_eq!(
                    c.blooms_built + c.imprints_built,
                    0,
                    "off mode built a tier"
                );
                assert_eq!(c.tier_skips, 0);
            }
            if c.mode == "bloom" {
                assert_eq!(c.imprints_built, 0, "forced bloom built an imprint");
            }
            if c.mode == "imprint" {
                assert_eq!(c.blooms_built, 0, "forced imprint built a bloom");
            }
        }
    }
}

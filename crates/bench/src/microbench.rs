//! A dependency-free timing harness for the `benches/` targets.
//!
//! Each benchmark calibrates an iteration count against a ~10ms batch
//! budget, runs several samples, and reports the best and mean
//! per-iteration time. Best-of-samples is the headline number: it is the
//! least noisy estimator on a shared machine, where interference only ever
//! adds time.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Samples per benchmark.
const SAMPLES: usize = 5;
/// Target wall time of one sample batch.
const BATCH_BUDGET: Duration = Duration::from_millis(10);

/// One benchmark's timing summary.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name as printed.
    pub name: String,
    /// Iterations per sample batch.
    pub iters: u64,
    /// Fastest observed per-iteration time, nanoseconds.
    pub best_ns: f64,
    /// Mean per-iteration time across samples, nanoseconds.
    pub mean_ns: f64,
}

impl std::fmt::Display for BenchResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<44} best {:>10}  mean {:>10}  ({} iters x {} samples)",
            self.name,
            fmt_ns(self.best_ns),
            fmt_ns(self.mean_ns),
            self.iters,
            SAMPLES
        )
    }
}

/// Formats a per-iteration time with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.1}ns")
    }
}

/// Prints a section header (the group name).
pub fn section(title: &str) {
    println!("\n-- {title}");
}

/// Times `f`, prints one result line, and returns the summary.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> BenchResult {
    // One warm-up call doubles as the calibration probe.
    let t = Instant::now();
    black_box(f());
    let once_ns = t.elapsed().as_nanos().max(1);
    let iters = (BATCH_BUDGET.as_nanos() / once_ns).clamp(1, 1_000_000) as u64;

    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let per = t.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(per);
        total += per;
    }
    let result = BenchResult {
        name: name.to_string(),
        iters,
        best_ns: best,
        mean_ns: total / SAMPLES as f64,
    };
    println!("{result}");
    result
}

/// Times `f` on a fresh `setup()` value per sample, excluding the setup
/// from the measurement — for consuming operations (first crack, first
/// adaptive query) that cannot be repeated on the same state.
pub fn bench_with_setup<S, R>(
    name: &str,
    mut setup: impl FnMut() -> S,
    mut f: impl FnMut(S) -> R,
) -> BenchResult {
    black_box(f(setup())); // warm-up
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..SAMPLES {
        let s = setup();
        let t = Instant::now();
        black_box(f(s));
        let per = t.elapsed().as_nanos() as f64;
        best = best.min(per);
        total += per;
    }
    let result = BenchResult {
        name: name.to_string(),
        iters: 1,
        best_ns: best,
        mean_ns: total / SAMPLES as f64,
    };
    println!("{result}");
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_plausible_times() {
        let r = bench("spin", || {
            let mut x = 0u64;
            for i in 0..100u64 {
                x = x.wrapping_add(black_box(i));
            }
            x
        });
        assert!(r.best_ns > 0.0);
        assert!(r.mean_ns >= r.best_ns);
        assert!(r.iters >= 1);
    }

    #[test]
    fn bench_with_setup_excludes_setup() {
        let r = bench_with_setup("consume", || vec![1u8; 16], |v| v.len());
        assert!(r.best_ns > 0.0);
        assert_eq!(r.iters, 1);
    }

    #[test]
    fn formatting_units() {
        assert_eq!(fmt_ns(12.34), "12.3ns");
        assert_eq!(fmt_ns(12_340.0), "12.34µs");
        assert_eq!(fmt_ns(12_340_000.0), "12.34ms");
    }
}

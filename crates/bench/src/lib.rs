//! # ads-bench — the experiment harness
//!
//! One runner per table/figure of the reconstructed evaluation (E1–E14 in
//! DESIGN.md), plus Criterion microbenches under `benches/`. Run with:
//!
//! ```text
//! cargo run -p ads-bench --release --bin harness -- all
//! cargo run -p ads-bench --release --bin harness -- e3 --rows 10000000
//! cargo run -p ads-bench --release --bin harness -- e4 --quick
//! ```

#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod runner;

pub use report::Report;
pub use runner::{replay, replay_agg, ReplayResult, Scale};

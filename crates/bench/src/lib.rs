//! # ads-bench — the experiment harness
//!
//! One runner per table/figure of the reconstructed evaluation (E1–E21 in
//! DESIGN.md), plus microbenches under `benches/` built on the local
//! [`microbench`] timing harness. Run with:
//!
//! ```text
//! cargo run -p ads-bench --release --bin harness -- all
//! cargo run -p ads-bench --release --bin harness -- e3 --rows 10000000
//! cargo run -p ads-bench --release --bin harness -- e4 --quick
//! cargo bench -p ads-bench
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod kernels;
pub mod microbench;
pub mod mutation_bench;
pub mod plan_bench;
pub mod reorg_bench;
pub mod report;
pub mod runner;
pub mod server_bench;
pub mod shard_bench;
pub mod sketch_bench;

pub use report::Report;
pub use runner::{replay, replay_agg, replay_with_policy, ReplayResult, Scale};

//! E19 machinery — zone-local adaptive reorganization, emitted as the
//! machine-readable `ads-reorg-bench/v1` document
//! (`results/BENCH_reorg.json`).
//!
//! The measurement is the engine's inline loop (prune → scan → observe →
//! maintain), so each mode pays its adaptation — including promotion
//! build copies — on the query path, exactly where the paper charges
//! adaptation cost. Three layout policies run the same column and query
//! stream:
//!
//! * **flat** — metadata-only adaptation (`enable_reorg: false`), the
//!   paper's baseline;
//! * **always** — the relative-hotness gate disabled
//!   (`reorg_hot_factor: 0.0`, one scan suffices): every built zone is
//!   promoted, the over-eager ablation;
//! * **adaptive** — the shipped policy (`AdaptiveConfig::with_reorg()`):
//!   promotion requires amortized scan volume *and* a scan rate that
//!   stands out against the map-wide mean.
//!
//! Two things are under test. **Equivalence** — per-cell answer checksums
//! (counts plus exact i64-sum bit patterns) must be identical across the
//! three modes; `run` asserts it, the report re-checks it. **The gate** —
//! on clustered data with a hot zone, adaptive must convert repeated
//! partial scans into positional lookups and beat flat on total query
//! time; on uniform data nothing stands out, promotion must never
//! trigger, and adaptive must stay within noise of flat.

use ads_core::adaptive::{AdaptiveConfig, AdaptiveZonemap};
use ads_core::RangePredicate;
use ads_engine::{execute_with_policy, AggKind, ExecPolicy};
use ads_workloads::{queries, DataSpec};
use std::fmt::Write;
use std::time::Instant;

/// Layout policies each (distribution, drift) pair is swept over.
pub const MODES: &[&str] = &["flat", "always", "adaptive"];

/// Hotspot drift patterns: a stationary hot zone and one that jumps
/// between four phase centres (the workload-shift scenario).
pub const DRIFTS: &[&str] = &["stable", "shifting"];

/// One measured (distribution, drift, mode) cell.
#[derive(Debug, Clone)]
pub struct ReorgCell {
    /// Data distribution label.
    pub dist: String,
    /// Hotspot drift label (`stable` or `shifting`).
    pub drift: String,
    /// Layout policy label (`flat`, `always`, or `adaptive`).
    pub mode: String,
    /// Queries answered.
    pub queries: u64,
    /// Total wall time of the query loop, adaptation included.
    pub elapsed_ns: u64,
    /// Rows the scan phase actually touched across all queries
    /// (full-match and positional-match rows excluded).
    pub rows_scanned: u64,
    /// Zones promoted to the reorganized layout.
    pub zones_promoted: u64,
    /// Zones demoted back to flat.
    pub zones_demoted: u64,
    /// Payload bytes copied by promotion builds and crack passes.
    pub bytes_moved: u64,
    /// Nanoseconds spent inside reorganization passes.
    pub reorg_ns: u64,
    /// Order-independent answer checksum (counts + i64-exact sum bits);
    /// must agree across modes within a (dist, drift) pair.
    pub checksum: u64,
}

/// The full E19 result set.
#[derive(Debug, Clone)]
pub struct ReorgBenchReport {
    /// Rows per column.
    pub rows: usize,
    /// Queries per cell.
    pub queries_per_cell: usize,
    /// Value domain.
    pub domain: i64,
    /// Measured cells, mode-major within each (distribution, drift).
    pub cells: Vec<ReorgCell>,
}

impl ReorgBenchReport {
    /// Cell lookup by coordinates.
    fn cell(&self, dist: &str, drift: &str, mode: &str) -> Option<&ReorgCell> {
        self.cells
            .iter()
            .find(|c| c.dist == dist && c.drift == drift && c.mode == mode)
    }

    /// Acceptance: on at least one clustered/skewed hot-zone cell,
    /// adaptive reorganization beats metadata-only skipping on total
    /// query time.
    pub fn adaptive_beats_flat_on_hot(&self) -> bool {
        self.cells.iter().any(|c| {
            c.mode == "adaptive"
                && c.dist != "uniform"
                && c.zones_promoted > 0
                && self
                    .cell(&c.dist, &c.drift, "flat")
                    .is_some_and(|flat| c.elapsed_ns < flat.elapsed_ns)
        })
    }

    /// Acceptance: on uniform data the relative-hotness gate declines —
    /// the adaptive mode promotes nothing in any drift pattern.
    pub fn uniform_never_promotes(&self) -> bool {
        let uniform: Vec<_> = self
            .cells
            .iter()
            .filter(|c| c.dist == "uniform" && c.mode == "adaptive")
            .collect();
        !uniform.is_empty() && uniform.iter().all(|c| c.zones_promoted == 0)
    }

    /// Acceptance: on uniform data adaptive stays within `factor` of
    /// flat's total query time (the gate's bookkeeping is noise).
    pub fn uniform_within_noise_of_flat(&self, factor: f64) -> bool {
        self.cells
            .iter()
            .filter(|c| c.dist == "uniform" && c.mode == "adaptive")
            .all(|c| {
                self.cell(&c.dist, &c.drift, "flat")
                    .is_some_and(|flat| c.elapsed_ns as f64 <= factor * flat.elapsed_ns as f64)
            })
    }

    /// Acceptance: answer checksums agree across all three modes in
    /// every (distribution, drift) pair.
    pub fn answers_identical_across_modes(&self) -> bool {
        self.cells.iter().all(|c| {
            MODES
                .iter()
                .filter_map(|m| self.cell(&c.dist, &c.drift, m))
                .all(|other| other.checksum == c.checksum)
        })
    }

    /// Renders the `ads-reorg-bench/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str("  \"schema\": \"ads-reorg-bench/v1\",\n");
        let _ = writeln!(s, "  \"rows\": {},", self.rows);
        let _ = writeln!(s, "  \"queries_per_cell\": {},", self.queries_per_cell);
        let _ = writeln!(s, "  \"domain\": {},", self.domain);
        let _ = writeln!(
            s,
            "  \"adaptive_beats_flat_on_hot\": {},",
            self.adaptive_beats_flat_on_hot()
        );
        let _ = writeln!(
            s,
            "  \"uniform_never_promotes\": {},",
            self.uniform_never_promotes()
        );
        let _ = writeln!(
            s,
            "  \"answers_identical_across_modes\": {},",
            self.answers_identical_across_modes()
        );
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"dist\": \"{}\", \"drift\": \"{}\", \"mode\": \"{}\", \
                 \"queries\": {}, \"elapsed_ns\": {}, \"rows_scanned\": {}, \
                 \"zones_promoted\": {}, \"zones_demoted\": {}, \
                 \"bytes_moved\": {}, \"reorg_ns\": {}, \"checksum\": {}}}",
                c.dist,
                c.drift,
                c.mode,
                c.queries,
                c.elapsed_ns,
                c.rows_scanned,
                c.zones_promoted,
                c.zones_demoted,
                c.bytes_moved,
                c.reorg_ns,
                c.checksum,
            );
            s.push_str(if i + 1 < self.cells.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Renders the README's reorganization table.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "| Distribution | Drift | Mode | total ms | Mrows scanned | \
             promoted | demoted | MB moved |"
        );
        let _ = writeln!(s, "|---|---|---|---:|---:|---:|---:|---:|");
        for c in &self.cells {
            let _ = writeln!(
                s,
                "| {} | {} | {} | {:.1} | {:.2} | {} | {} | {:.1} |",
                c.dist,
                c.drift,
                c.mode,
                c.elapsed_ns as f64 / 1e6,
                c.rows_scanned as f64 / 1e6,
                c.zones_promoted,
                c.zones_demoted,
                c.bytes_moved as f64 / 1e6,
            );
        }
        s
    }
}

/// The three layout policies as zonemap configurations.
fn mode_config(mode: &str) -> AdaptiveConfig {
    match mode {
        "flat" => AdaptiveConfig::default(),
        "always" => AdaptiveConfig {
            enable_reorg: true,
            reorg_after_scans: 1,
            reorg_hot_factor: 0.0,
            ..AdaptiveConfig::default()
        },
        "adaptive" => AdaptiveConfig::with_reorg(),
        other => unreachable!("unknown mode {other}"),
    }
}

/// Runs one (data, query stream, mode) cell through the engine's inline
/// loop, alternating COUNT and SUM so both the positional count path and
/// the order-sensitive aggregation path are exercised.
fn run_cell(
    data: &[i64],
    stream: &[queries::RangeQuery],
    dist: &str,
    drift: &str,
    mode: &str,
) -> ReorgCell {
    let mut zm = AdaptiveZonemap::new(data.len(), mode_config(mode));
    let policy = ExecPolicy::sequential();
    let mut checksum = 0u64;
    let mut rows_scanned = 0u64;
    let t0 = Instant::now();
    for (i, q) in stream.iter().enumerate() {
        let pred = RangePredicate::between(q.lo, q.hi);
        let agg = if i % 2 == 0 {
            AggKind::Count
        } else {
            AggKind::Sum
        };
        let (ans, m) = execute_with_policy(data, &mut zm, pred, agg, &policy);
        checksum = checksum
            .wrapping_mul(0x0100_0000_01B3)
            .wrapping_add(ans.count)
            .wrapping_add(ans.sum.map_or(0, f64::to_bits));
        rows_scanned += m.rows_scanned as u64;
    }
    let elapsed_ns = t0.elapsed().as_nanos() as u64;
    let st = zm.reorg_stats();
    ReorgCell {
        dist: dist.to_string(),
        drift: drift.to_string(),
        mode: mode.to_string(),
        queries: stream.len() as u64,
        elapsed_ns,
        rows_scanned,
        zones_promoted: st.zones_promoted,
        zones_demoted: st.zones_demoted,
        bytes_moved: st.bytes_moved,
        reorg_ns: st.reorg_ns,
        checksum,
    }
}

/// Runs the full grid: {clustered, zipf, uniform} × [`DRIFTS`] ×
/// [`MODES`], asserting answer equivalence across modes in every
/// (distribution, drift) pair.
pub fn run(rows: usize, queries_per_cell: usize, domain: i64, seed: u64) -> ReorgBenchReport {
    let mut report = ReorgBenchReport {
        rows,
        queries_per_cell,
        domain,
        cells: Vec::new(),
    };

    for spec in [
        DataSpec::Clustered { clusters: 64 },
        DataSpec::Zipf { theta: 0.99 },
        DataSpec::Uniform,
    ] {
        let data = spec.generate(rows, domain, seed);
        let dist = spec.label();
        for &drift in DRIFTS {
            let stream = match drift {
                "stable" => queries::hotspot_ranges(queries_per_cell, domain, 0.02, 0.3, 0.1, seed),
                "shifting" => {
                    queries::shifting_hotspot(queries_per_cell, domain, 0.02, 4, 0.1, seed)
                }
                other => unreachable!("unknown drift {other}"),
            };
            let mut reference: Option<u64> = None;
            for &mode in MODES {
                eprintln!("  e19: {dist} {drift} {mode}");
                let cell = run_cell(&data, &stream, &dist, drift, mode);
                match reference {
                    Some(want) => assert_eq!(
                        cell.checksum, want,
                        "{dist}/{drift}/{mode}: answers diverged from flat"
                    ),
                    None => reference = Some(cell.checksum),
                }
                report.cells.push(cell);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_grid_runs_and_serialises() {
        // Multi-zone even at the default 4096-row zone target: single-zone
        // maps bypass the relative-hotness gate by design.
        let report = run(40_000, 16, 10_000, 7);
        assert_eq!(report.cells.len(), 3 * DRIFTS.len() * MODES.len());
        assert!(report.answers_identical_across_modes());
        assert!(
            report.uniform_never_promotes(),
            "gate must decline on uniform data even at tiny scale"
        );
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"ads-reorg-bench/v1\""));
        assert!(json.contains("\"mode\": \"adaptive\""));
        assert!(!report.to_markdown().is_empty());
        for c in &report.cells {
            assert_eq!(c.queries, 16);
            assert!(c.elapsed_ns > 0);
            if c.mode == "flat" {
                assert_eq!(c.zones_promoted, 0, "flat mode must never promote");
                assert_eq!(c.bytes_moved, 0);
            }
        }
    }
}

//! E16 machinery — concurrent service throughput under the three
//! adaptation modes, emitted as the machine-readable
//! `ads-server-bench/v1` document (`results/BENCH_server.json`).
//!
//! The measurement is a closed loop: one client thread per reader, each
//! submitting its fixed query stream back-to-back through
//! [`QueryService::query`]. Inline mode serialises every query behind the
//! engine lock regardless of reader count — that is the baseline the
//! paper's protocol imposes on a concurrent system. Async mode executes
//! against published snapshots and defers adaptation to the maintenance
//! thread, so throughput should scale with readers; frozen mode isolates
//! pure snapshot-read scaling with no adaptation at all.
//!
//! Every cell's answers are checksummed per client and compared across
//! modes (same distribution, same client stream ⇒ identical checksums),
//! so the speedups reported here are for bit-identical work.

use ads_core::RangePredicate;
use ads_engine::AggKind;
use ads_server::{AdaptationMode, QueryService, ServerConfig, ServerStats};
use ads_workloads::{queries, DataSpec};
use std::collections::HashMap;
use std::fmt::Write;
use std::time::Instant;

/// The mode/reader grid each distribution is measured over.
pub const CELLS: &[(AdaptationMode, usize)] = &[
    (AdaptationMode::Inline, 1),
    (AdaptationMode::Inline, 4),
    (AdaptationMode::Async, 1),
    (AdaptationMode::Async, 2),
    (AdaptationMode::Async, 4),
    (AdaptationMode::Async, 8),
    (AdaptationMode::Frozen, 4),
];

/// One measured (distribution, mode, readers) cell.
#[derive(Debug, Clone)]
pub struct ServerCell {
    /// Data distribution label.
    pub dist: String,
    /// Adaptation mode label.
    pub mode: &'static str,
    /// Reader threads (= closed-loop client threads).
    pub readers: usize,
    /// Queries answered.
    pub queries: u64,
    /// Wall time of the whole cell.
    pub elapsed_ns: u64,
    /// Answered queries per second.
    pub qps: f64,
    /// Latency percentiles (dequeue-to-answer).
    pub p50_ns: u64,
    /// 95th percentile.
    pub p95_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// Observations dropped at the feedback channel.
    pub feedback_dropped: u64,
    /// Snapshots the maintenance thread published.
    pub snapshots_published: u64,
}

/// The full E16 result set.
#[derive(Debug, Clone)]
pub struct ServerBenchReport {
    /// Rows per column.
    pub rows: usize,
    /// Queries each client submits.
    pub queries_per_client: usize,
    /// Host cores (context for the scaling numbers).
    pub host_cores: usize,
    /// Measured cells, in [`CELLS`] order per distribution.
    pub cells: Vec<ServerCell>,
}

impl ServerBenchReport {
    /// Throughput of a cell, or `None` if it was not measured.
    pub fn qps_of(&self, dist: &str, mode: &str, readers: usize) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.dist == dist && c.mode == mode && c.readers == readers)
            .map(|c| c.qps)
    }

    /// The headline acceptance check: async throughput at ≥4 readers beats
    /// the single-threaded inline baseline on every distribution.
    pub fn async_beats_inline(&self) -> bool {
        let dists: Vec<&str> = {
            let mut d: Vec<&str> = self.cells.iter().map(|c| c.dist.as_str()).collect();
            d.dedup();
            d
        };
        dists.iter().all(
            |d| match (self.qps_of(d, "async", 4), self.qps_of(d, "inline", 1)) {
                (Some(a), Some(i)) => a > i,
                _ => false,
            },
        )
    }

    /// Renders the `ads-server-bench/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str("  \"schema\": \"ads-server-bench/v1\",\n");
        let _ = writeln!(s, "  \"rows\": {},", self.rows);
        let _ = writeln!(s, "  \"queries_per_client\": {},", self.queries_per_client);
        let _ = writeln!(s, "  \"host_cores\": {},", self.host_cores);
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"dist\": \"{}\", \"mode\": \"{}\", \"readers\": {}, \"queries\": {}, \
                 \"elapsed_ns\": {}, \"qps\": {:.1}, \"p50_ns\": {}, \"p95_ns\": {}, \
                 \"p99_ns\": {}, \"feedback_dropped\": {}, \"snapshots_published\": {}}}",
                c.dist,
                c.mode,
                c.readers,
                c.queries,
                c.elapsed_ns,
                c.qps,
                c.p50_ns,
                c.p95_ns,
                c.p99_ns,
                c.feedback_dropped,
                c.snapshots_published,
            );
            s.push_str(if i + 1 < self.cells.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Renders the README's service-throughput table.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "| Distribution | Mode | Readers | kq/s | vs inline@1 | p50 µs | p99 µs |"
        );
        let _ = writeln!(s, "|---|---|---:|---:|---:|---:|---:|");
        for c in &self.cells {
            let base = self.qps_of(&c.dist, "inline", 1).unwrap_or(c.qps);
            let _ = writeln!(
                s,
                "| {} | {} | {} | {:.1} | {:.2}x | {:.0} | {:.0} |",
                c.dist,
                c.mode,
                c.readers,
                c.qps / 1e3,
                c.qps / base.max(1e-9),
                c.p50_ns as f64 / 1e3,
                c.p99_ns as f64 / 1e3,
            );
        }
        s
    }
}

/// Runs the closed-loop measurement for one cell and returns its stats
/// plus the per-client answer checksums.
fn run_cell(
    data: &[i64],
    mode: AdaptationMode,
    readers: usize,
    queries_per_client: usize,
    domain: i64,
    seed: u64,
) -> (ServerStats, u64, Vec<u64>) {
    let svc = QueryService::start(
        data.to_vec(),
        ServerConfig {
            readers,
            queue_capacity: 4 * readers.max(1) + 16,
            adaptation: mode,
            ..ServerConfig::default()
        },
    );

    let t0 = Instant::now();
    let checksums: Vec<u64> = std::thread::scope(|scope| {
        let svc = &svc;
        let handles: Vec<_> = (0..readers)
            .map(|client| {
                scope.spawn(move || {
                    // The client's stream depends only on its index, so the
                    // same client sees the same queries in every mode.
                    let preds = queries::uniform_ranges(
                        queries_per_client,
                        domain,
                        0.05,
                        seed ^ (client as u64).wrapping_mul(0x9E37_79B9),
                    );
                    let mut checksum = 0u64;
                    for q in preds {
                        let pred = RangePredicate::between(q.lo, q.hi);
                        let reply = svc.query(pred, AggKind::Count).expect("closed loop");
                        checksum =
                            checksum.wrapping_add(reply.answer().expect("no deadline").count);
                    }
                    checksum
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed_ns = t0.elapsed().as_nanos() as u64;

    (svc.shutdown(), elapsed_ns, checksums)
}

/// Runs the full grid: `CELLS` × {sorted, uniform} at `rows` rows.
pub fn run(rows: usize, queries_per_client: usize, domain: i64, seed: u64) -> ServerBenchReport {
    let mut report = ServerBenchReport {
        rows,
        queries_per_client,
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        cells: Vec::new(),
    };

    for spec in [DataSpec::Sorted, DataSpec::Uniform] {
        let data = spec.generate(rows, domain, seed);
        let dist = spec.label();
        // client index -> checksum; equal streams must answer equally in
        // every mode.
        let mut reference: HashMap<usize, u64> = HashMap::new();
        for &(mode, readers) in CELLS {
            eprintln!("  e16: {dist} {} x{readers} readers", mode.label());
            let (stats, elapsed_ns, checksums) =
                run_cell(&data, mode, readers, queries_per_client, domain, seed);
            for (client, &sum) in checksums.iter().enumerate() {
                match reference.get(&client) {
                    Some(&want) => assert_eq!(
                        sum,
                        want,
                        "{dist}/{}/{readers}: client {client} answers diverged",
                        mode.label()
                    ),
                    None => {
                        reference.insert(client, sum);
                    }
                }
            }
            assert_eq!(stats.queries, (readers * queries_per_client) as u64);
            report.cells.push(ServerCell {
                dist: dist.clone(),
                mode: mode.label(),
                readers,
                queries: stats.queries,
                elapsed_ns,
                qps: stats.queries as f64 / (elapsed_ns.max(1) as f64 / 1e9),
                p50_ns: stats.latency.p50_ns(),
                p95_ns: stats.latency.p95_ns(),
                p99_ns: stats.latency.p99_ns(),
                feedback_dropped: stats.feedback_dropped,
                snapshots_published: stats.snapshots_published,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_grid_runs_and_serialises() {
        let report = run(4_000, 10, 10_000, 7);
        assert_eq!(report.cells.len(), 2 * CELLS.len());
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"ads-server-bench/v1\""));
        assert!(json.contains("\"mode\": \"async\""));
        assert!(!report.to_markdown().is_empty());
        // Every cell answered its whole closed loop.
        for c in &report.cells {
            assert_eq!(c.queries, (c.readers * 10) as u64);
            assert!(c.qps > 0.0);
        }
    }
}

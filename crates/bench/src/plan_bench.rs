//! E18 machinery — conjunction probe planning, emitted as the
//! machine-readable `ads-plan-bench/v1` document
//! (`results/BENCH_plans.json`).
//!
//! Each cell is a two-column conjunction workload (data shape × per-column
//! selectivity, with the *caller* order fixed by the cell definition) run
//! under three plan modes over fresh sessions:
//!
//! * **planned** — the cost-based planner: estimate-ordered, restricted,
//!   gated probes;
//! * **fixed** — the legacy behaviour: caller order, full-map probes,
//!   no gating;
//! * **oracle** — the best [`PlanMode::ForcedOrder`] permutation by
//!   deterministic model cost, found by exhaustive search over fresh
//!   sessions (the planner's upper bound for *ordering* decisions; it
//!   cannot express gating, so planned may beat it on fallback-heavy
//!   cells).
//!
//! Wall time is reported but the comparison metric is the deterministic
//! **model cost** `probe_cost_tuples x zones_probed + rows_scanned`,
//! accumulated over the query stream — machine-independent and free of
//! timer noise. Answers (checksums) must be identical across modes; the
//! run asserts it.
//!
//! The grid runs over **static** zonemaps deliberately: adaptive
//! structures already self-deactivate unprofitable zones (E10), which
//! hides the ordering/gating decision this experiment isolates. Static
//! metadata cannot self-regulate — every probe the plan requests is paid
//! in full — so the planner's effect is visible and exactly reproducible.

use ads_core::{CostModel, RangePredicate};
use ads_engine::{AnyPredicate, PlanMode, Strategy, TableSession};
use ads_storage::{Column, Table};
use ads_workloads::{data, queries};
use std::fmt::Write;

/// One measured plan mode within a cell.
#[derive(Debug, Clone)]
pub struct ModeStats {
    /// Mode label: `planned`, `fixed`, or `oracle`.
    pub mode: String,
    /// Total wall nanoseconds across the query stream.
    pub wall_ns: u64,
    /// Total metadata entries probed.
    pub zones_probed: u64,
    /// Total rows scanned (per-conjunct fills counted individually).
    pub rows_scanned: u64,
    /// Queries that fell back to scan-and-filter without probing.
    pub fallbacks: u64,
    /// Deterministic cost: `probe_cost_tuples * zones_probed + rows_scanned`.
    pub model_cost: f64,
    /// Answer checksum (must agree across modes of the same cell).
    pub checksum: u64,
}

/// One conjunction workload: data shapes, selectivities, caller order.
#[derive(Debug, Clone)]
pub struct PlanCell {
    /// Cell label.
    pub label: String,
    /// First (caller-order) column's data shape.
    pub dist_a: String,
    /// Second column's data shape.
    pub dist_b: String,
    /// First conjunct's target selectivity.
    pub sel_a: f64,
    /// Second conjunct's target selectivity.
    pub sel_b: f64,
    /// The oracle's winning probe order, as conjunct indices.
    pub oracle_order: Vec<usize>,
    /// Stats per mode: planned, fixed, oracle.
    pub modes: Vec<ModeStats>,
}

impl PlanCell {
    /// The named mode's stats.
    pub fn mode(&self, name: &str) -> &ModeStats {
        self.modes
            .iter()
            .find(|m| m.mode == name)
            .expect("mode measured")
    }

    /// planned / fixed model-cost ratio (< 1 means the planner won).
    pub fn planned_vs_fixed(&self) -> f64 {
        self.mode("planned").model_cost / self.mode("fixed").model_cost.max(1.0)
    }

    /// planned / fixed probe-work ratio. When every mode lands on the
    /// same candidate set, scan work is equal by construction and probe
    /// work is the only lever a plan has — this isolates it.
    pub fn planned_vs_fixed_probes(&self) -> f64 {
        self.mode("planned").zones_probed as f64 / self.mode("fixed").zones_probed.max(1) as f64
    }
}

/// The full E18 result set.
#[derive(Debug, Clone)]
pub struct PlanBenchReport {
    /// Rows per column.
    pub rows: usize,
    /// Queries per cell and mode.
    pub queries: usize,
    /// Probe price used for the deterministic model cost.
    pub probe_cost_tuples: f64,
    /// Measured cells.
    pub cells: Vec<PlanCell>,
}

impl PlanBenchReport {
    /// Headline: the planner's model cost is never materially worse than
    /// the legacy fixed order (2% tolerance for adaptation divergence).
    pub fn planned_never_worse(&self) -> bool {
        self.cells.iter().all(|c| c.planned_vs_fixed() <= 1.02)
    }

    /// Headline: on the adversarial cell (useless wide first conjunct,
    /// highly selective second) the planner measurably beats the fixed
    /// order on probe work. Scan work is identical there by construction
    /// — every sound plan converges on the same candidate rows — so the
    /// ordering decision shows up purely in zones probed.
    pub fn adversarial_beats_fixed(&self) -> bool {
        self.cells
            .iter()
            .filter(|c| c.label == "adversarial")
            .all(|c| c.planned_vs_fixed_probes() <= 0.9 && c.planned_vs_fixed() <= 1.0)
    }

    /// Headline: on unskippable uniform data the planner stops paying for
    /// probes at all (scan-and-filter fallback engages).
    pub fn fallback_engages_on_uniform(&self) -> bool {
        self.cells
            .iter()
            .filter(|c| c.label == "uniform-both")
            .all(|c| c.mode("planned").fallbacks > 0)
    }

    /// Renders the `ads-plan-bench/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str("  \"schema\": \"ads-plan-bench/v1\",\n");
        let _ = writeln!(s, "  \"rows\": {},", self.rows);
        let _ = writeln!(s, "  \"queries\": {},", self.queries);
        let _ = writeln!(s, "  \"probe_cost_tuples\": {},", self.probe_cost_tuples);
        let _ = writeln!(
            s,
            "  \"planned_never_worse\": {},",
            self.planned_never_worse()
        );
        let _ = writeln!(
            s,
            "  \"adversarial_beats_fixed\": {},",
            self.adversarial_beats_fixed()
        );
        let _ = writeln!(
            s,
            "  \"fallback_engages_on_uniform\": {},",
            self.fallback_engages_on_uniform()
        );
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let _ = writeln!(
                s,
                "    {{\"label\": \"{}\", \"dist_a\": \"{}\", \"dist_b\": \"{}\", \
                 \"sel_a\": {}, \"sel_b\": {}, \"oracle_order\": {:?}, \
                 \"planned_vs_fixed_cost\": {:.4}, \"planned_vs_fixed_probes\": {:.4}, \
                 \"modes\": [",
                c.label,
                c.dist_a,
                c.dist_b,
                c.sel_a,
                c.sel_b,
                c.oracle_order,
                c.planned_vs_fixed(),
                c.planned_vs_fixed_probes()
            );
            for (j, m) in c.modes.iter().enumerate() {
                let _ = write!(
                    s,
                    "      {{\"mode\": \"{}\", \"wall_ns\": {}, \"zones_probed\": {}, \
                     \"rows_scanned\": {}, \"fallbacks\": {}, \"model_cost\": {:.1}, \
                     \"checksum\": {}}}",
                    m.mode,
                    m.wall_ns,
                    m.zones_probed,
                    m.rows_scanned,
                    m.fallbacks,
                    m.model_cost,
                    m.checksum
                );
                s.push_str(if j + 1 < c.modes.len() { ",\n" } else { "\n" });
            }
            s.push_str("    ]}");
            s.push_str(if i + 1 < self.cells.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Renders the README's planning table.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "| Cell | Mode | ms | Zones probed | Rows scanned | Fallbacks | Model cost | vs fixed |"
        );
        let _ = writeln!(s, "|---|---|---:|---:|---:|---:|---:|---:|");
        for c in &self.cells {
            for m in &c.modes {
                let vs = if m.mode == "fixed" {
                    "1.00".to_string()
                } else {
                    format!("{:.2}", m.model_cost / c.mode("fixed").model_cost.max(1.0))
                };
                let _ = writeln!(
                    s,
                    "| {} | {} | {:.1} | {} | {} | {} | {:.0} | {} |",
                    c.label,
                    m.mode,
                    m.wall_ns as f64 / 1e6,
                    m.zones_probed,
                    m.rows_scanned,
                    m.fallbacks,
                    m.model_cost,
                    vs
                );
            }
        }
        s
    }
}

/// A cell's static definition.
struct CellSpec {
    label: &'static str,
    dist_a: &'static str,
    dist_b: &'static str,
    sel_a: f64,
    sel_b: f64,
}

const CELLS: &[CellSpec] = &[
    // Sorted first column at moderate selectivity, uniform second: the
    // classic case where the first conjunct does all the work.
    CellSpec {
        label: "sorted-first",
        dist_a: "sorted",
        dist_b: "uniform",
        sel_a: 0.2,
        sel_b: 0.02,
    },
    // Clustered first column: skippable but less cleanly than sorted.
    CellSpec {
        label: "clustered-first",
        dist_a: "clustered",
        dist_b: "uniform",
        sel_a: 0.2,
        sel_b: 0.02,
    },
    // Both columns uniform at moderate selectivity: zonemaps cannot skip,
    // so the only right plan is to stop probing (fallback).
    CellSpec {
        label: "uniform-both",
        dist_a: "uniform",
        dist_b: "uniform",
        sel_a: 0.2,
        sel_b: 0.2,
    },
    // Adversarial caller order: a useless wide conjunct first, the highly
    // selective sorted conjunct second — exactly where a fixed order pays
    // a full probe sweep for nothing and the planner should flip it.
    CellSpec {
        label: "adversarial",
        dist_a: "uniform",
        dist_b: "sorted",
        sel_a: 0.5,
        sel_b: 0.01,
    },
];

fn gen_column(dist: &str, rows: usize, domain: i64, seed: u64) -> Vec<i64> {
    match dist {
        "sorted" => data::sorted(rows, domain),
        "clustered" => data::clustered(rows, 64, 0.02, domain, seed),
        _ => data::uniform(rows, domain, seed),
    }
}

/// Runs one (cell, mode) measurement over a fresh session.
fn run_mode(
    table: &Table,
    mode: PlanMode,
    label: &str,
    qs: &[(RangePredicate<i64>, RangePredicate<i64>)],
    cost: &CostModel,
) -> ModeStats {
    let mut ts = TableSession::new(
        table.clone(),
        &Strategy::StaticZonemap { zone_rows: 4096 },
        &["a", "b"],
    )
    .expect("base-coordinate strategy");
    ts.set_plan_mode(mode);
    let mut checksum = 0u64;
    for (pa, pb) in qs {
        let conjuncts = [("a", AnyPredicate::I64(*pa)), ("b", AnyPredicate::I64(*pb))];
        let (count, _) = ts.count_conjunction(&conjuncts).expect("valid conjunction");
        checksum = checksum.wrapping_add(count);
    }
    let t = ts.totals();
    ModeStats {
        mode: label.to_string(),
        wall_ns: t.wall_ns,
        zones_probed: t.zones_probed,
        rows_scanned: t.rows_scanned,
        fallbacks: t.plan_fallbacks,
        model_cost: cost.probe_cost_tuples * t.zones_probed as f64 + t.rows_scanned as f64,
        checksum,
    }
}

/// Runs the full grid: [`CELLS`] × {planned, fixed, oracle}.
pub fn run(rows: usize, n_queries: usize, domain: i64, seed: u64) -> PlanBenchReport {
    let cost = CostModel::default();
    let mut report = PlanBenchReport {
        rows,
        queries: n_queries,
        probe_cost_tuples: cost.probe_cost_tuples,
        cells: Vec::new(),
    };
    for spec in CELLS {
        eprintln!("  e18: {} cell", spec.label);
        let mut table = Table::new("t");
        table
            .add_column(
                "a",
                Column::from_values(gen_column(spec.dist_a, rows, domain, seed)),
            )
            .expect("fresh column");
        table
            .add_column(
                "b",
                Column::from_values(gen_column(spec.dist_b, rows, domain, seed ^ 0xB)),
            )
            .expect("fresh column");
        let qa = queries::uniform_ranges(n_queries, domain, spec.sel_a, seed ^ 0xA1);
        let qb = queries::uniform_ranges(n_queries, domain, spec.sel_b, seed ^ 0xB2);
        let qs: Vec<(RangePredicate<i64>, RangePredicate<i64>)> = qa
            .iter()
            .zip(&qb)
            .map(|(a, b)| {
                (
                    RangePredicate::between(a.lo, a.hi),
                    RangePredicate::between(b.lo, b.hi),
                )
            })
            .collect();

        let planned = run_mode(&table, PlanMode::Planned, "planned", &qs, &cost);
        let fixed = run_mode(&table, PlanMode::FixedOrder, "fixed", &qs, &cost);
        // Oracle: exhaustive forced-order search by model cost. Two
        // conjuncts, two permutations; every candidate gets a fresh
        // session so adaptation history cannot leak between orders.
        let (oracle_order, oracle) = [vec![0usize, 1], vec![1usize, 0]]
            .into_iter()
            .map(|ord| {
                let stats = run_mode(
                    &table,
                    PlanMode::ForcedOrder(ord.clone()),
                    "oracle",
                    &qs,
                    &cost,
                );
                (ord, stats)
            })
            .min_by(|(_, x), (_, y)| {
                x.model_cost
                    .partial_cmp(&y.model_cost)
                    .expect("costs are finite")
            })
            .expect("two permutations");

        assert_eq!(
            planned.checksum, fixed.checksum,
            "{}: planned and fixed answers diverged",
            spec.label
        );
        assert_eq!(
            oracle.checksum, fixed.checksum,
            "{}: oracle and fixed answers diverged",
            spec.label
        );
        report.cells.push(PlanCell {
            label: spec.label.to_string(),
            dist_a: spec.dist_a.to_string(),
            dist_b: spec.dist_b.to_string(),
            sel_a: spec.sel_a,
            sel_b: spec.sel_b,
            oracle_order,
            modes: vec![planned, fixed, oracle],
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_grid_runs_and_serialises() {
        let report = run(20_000, 12, 100_000, 42);
        assert_eq!(report.cells.len(), CELLS.len());
        for c in &report.cells {
            assert_eq!(c.modes.len(), 3);
            let fixed = c.mode("fixed");
            assert_eq!(c.mode("planned").checksum, fixed.checksum);
            assert_eq!(c.mode("oracle").checksum, fixed.checksum);
            assert!(fixed.model_cost > 0.0);
        }
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"ads-plan-bench/v1\""));
        assert!(json.contains("\"adversarial\""));
        assert!(!report.to_markdown().is_empty());
    }
}

//! Telemetry monitoring: the workload the paper's setting motivates.
//!
//! A fleet of sensors streams readings into a main-memory store. The
//! `timestamp` column arrives semi-sorted (network jitter), the `reading`
//! column is clustered per sensor-batch, and dashboards fire the same
//! shapes of range scans continuously. Adaptive zonemaps earn their
//! metadata from those scans — no offline indexing step ever runs.
//!
//! ```text
//! cargo run --release --example telemetry_monitoring
//! ```

use adaptive_data_skipping::core::adaptive::AdaptiveConfig;
use adaptive_data_skipping::core::RangePredicate;
use adaptive_data_skipping::engine::{AnyPredicate, Strategy, TableSession};
use adaptive_data_skipping::storage::{Column, Table};
use adaptive_data_skipping::workloads::data;

fn main() {
    let n = 2_000_000usize;
    let horizon = n as i64; // one reading per tick
    println!("ingesting {n} sensor readings…");

    // timestamp: semi-sorted arrival; reading: per-batch clustered values.
    let timestamps = data::almost_sorted(n, horizon, 0.03, 128, 11);
    let readings = data::clustered(n, 256, 0.01, 10_000, 12);

    let mut table = Table::new("telemetry");
    table
        .add_column("ts", Column::from_values(timestamps))
        .expect("fresh column");
    table
        .add_column("reading", Column::from_values(readings))
        .expect("fresh column");

    let mut session = TableSession::new(
        table,
        &Strategy::Adaptive(AdaptiveConfig::default()),
        &["ts", "reading"],
    )
    .expect("adaptive is a base-coordinate strategy");

    // Dashboard panel 1: alerts in the last 5% of the horizon with
    // readings in the alarm band. Fires every refresh.
    let recent = RangePredicate::between(horizon * 95 / 100, horizon - 1);
    let alarm = RangePredicate::between(9_000, 10_000);
    println!("\nalert panel: COUNT where ts in last 5% AND reading in alarm band");
    println!("refresh   matches   rows scanned   latency");
    for refresh in 1..=8 {
        let (count, m) = session
            .count_conjunction(&[
                ("ts", AnyPredicate::I64(recent)),
                ("reading", AnyPredicate::I64(alarm)),
            ])
            .expect("valid conjunction");
        println!(
            "{refresh:>7}   {count:>7}   {:>12}   {:>6.2}ms",
            m.rows_scanned,
            m.wall_ns as f64 / 1e6
        );
    }

    // Dashboard panel 2: rolling energy sum over a mid-range window.
    let window = RangePredicate::between(horizon / 2, horizon / 2 + horizon / 20);
    let (count, total, m) = session
        .sum_conjunction(&[("ts", AnyPredicate::I64(window))], "reading")
        .expect("valid conjunction");
    println!(
        "\nenergy panel: SUM(reading) over mid window -> {count} rows, sum {total:.0} ({:.2}ms)",
        m.wall_ns as f64 / 1e6
    );

    let t = session.totals();
    println!(
        "\nsession: {} queries, {:.1}ms total, {} rows scanned vs {} rows answered from metadata",
        t.queries,
        t.wall_ns as f64 / 1e6,
        t.rows_scanned,
        t.rows_full_match,
    );
}

//! The demo-paper view: watch an adaptive zonemap's structure evolve.
//!
//! The SIGMOD 2016 demo visualised zone boundaries changing as queries
//! arrived. This example prints the same story as ASCII: one character per
//! region of the column (`.` unbuilt, `#` built, `~` inherited bounds,
//! `x` dead), sampled after selected queries, plus the event log totals.
//!
//! ```text
//! cargo run --release --example adaptation_trace
//! ```

use adaptive_data_skipping::core::adaptive::{AdaptiveConfig, AdaptiveZonemap};
use adaptive_data_skipping::core::{
    RangeObservation, RangePredicate, ScanObservation, SkippingIndex,
};
use adaptive_data_skipping::storage::scan;
use adaptive_data_skipping::workloads::data;

const WIDTH: usize = 96;

fn strip(zm: &AdaptiveZonemap<i64>, len: usize) -> String {
    let mut chars = vec!['.'; WIDTH];
    for (range, label, _) in zm.zone_snapshot() {
        let a = range.start * WIDTH / len;
        let b = ((range.end * WIDTH).div_ceil(len)).min(WIDTH);
        let c = match label {
            "unbuilt" => '.',
            "built" => '#',
            "built~" => '~',
            _ => 'x',
        };
        for slot in &mut chars[a..b] {
            *slot = c;
        }
    }
    chars.into_iter().collect()
}

fn run_query(zm: &mut AdaptiveZonemap<i64>, data: &[i64], pred: RangePredicate<i64>) -> usize {
    let out = zm.prune(&pred);
    let mut observations = Vec::new();
    let mut count = out.rows_full_match();
    for unit in out.units() {
        let (q, min, max) =
            scan::count_in_range_with_minmax(&data[unit.start..unit.end], pred.lo, pred.hi);
        count += q;
        observations.push(RangeObservation::new(*unit, q, min, max));
    }
    zm.observe(&ScanObservation {
        predicate: pred,
        ranges: observations,
    });
    count
}

fn main() {
    // First half: random values (metadata will die there for these
    // queries). Second half: sorted (metadata thrives).
    let n = 1_000_000usize;
    let domain = 1_000_000i64;
    let mut column = data::uniform(n / 2, domain / 2, 21);
    column.extend(
        data::sorted(n / 2, domain / 2)
            .iter()
            .map(|v| v + domain / 2),
    );

    let cfg = AdaptiveConfig {
        target_zone_rows: 8192,
        merge_after_probes: 4,
        deactivate_after_probes: 8,
        maintenance_every: 4,
        revival_base_queries: None, // keep the picture stable
        ..AdaptiveConfig::default()
    };
    let mut zm = AdaptiveZonemap::new(n, cfg);

    println!(
        "column: rows 0..{} uniform-random, rows {}..{} sorted",
        n / 2,
        n / 2,
        n
    );
    println!("legend: . unbuilt   # built(exact)   ~ built(inherited)   x dead\n");
    println!("query    zones  structure");
    println!("{:>5}  {:>7}  {}", 0, zm.num_zones(), strip(&zm, n));

    // Queries land across the whole value domain.
    let preds: Vec<RangePredicate<i64>> = (0..400)
        .map(|q| {
            let lo = (q * 7919) % (domain - 10_000);
            RangePredicate::between(lo, lo + 10_000)
        })
        .collect();

    let checkpoints = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 400];
    for (i, pred) in preds.iter().enumerate() {
        run_query(&mut zm, &column, *pred);
        if checkpoints.contains(&(i + 1)) {
            println!("{:>5}  {:>7}  {}", i + 1, zm.num_zones(), strip(&zm, n));
        }
    }

    let totals = zm.trace().totals();
    println!("\nadaptation events: {totals}");
    let (unbuilt, built, dead) = zm.state_counts();
    println!("final zone states: {unbuilt} unbuilt, {built} built, {dead} dead");
    println!(
        "lifetime skip rate: {:.1}% of {} probes",
        zm.index_stats().skip_rate() * 100.0,
        zm.index_stats().total_probes
    );
    println!("\nrecent events:");
    for (seq, event) in zm.trace().recent().iter().rev().take(8) {
        println!("  query {seq:>4}: {event:?}");
    }
}

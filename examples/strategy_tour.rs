//! A tour of every skipping strategy on one workload, printing the
//! trade-off table: query time, build time, memory, skip rate.
//!
//! ```text
//! cargo run --release --example strategy_tour [rows] [queries]
//! ```

use adaptive_data_skipping::core::RangePredicate;
use adaptive_data_skipping::engine::{AggKind, ColumnSession, Strategy};
use adaptive_data_skipping::workloads::{DataSpec, QuerySpec};

fn main() {
    let mut args = std::env::args().skip(1);
    let rows: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    let num_queries: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(200);
    let domain = 1_000_000i64;

    let data = DataSpec::MixedRegions.generate(rows, domain, 7);
    let queries = QuerySpec::UniformRandom { selectivity: 0.01 }.generate(num_queries, domain, 8);
    println!("mixed-regions column, {rows} rows; {num_queries} COUNT queries @1% selectivity\n");
    println!(
        "{:<28} {:>10} {:>10} {:>11} {:>11} {:>9} {:>12}",
        "strategy", "build ms", "query ms", "mean µs", "metadata B", "copy B", "skip rate"
    );

    let mut counts: Option<u64> = None;
    for strategy in Strategy::roster() {
        let mut session = ColumnSession::new(data.clone(), &strategy);
        let mut checksum = 0u64;
        for q in &queries {
            let (ans, _) = session.query(RangePredicate::between(q.lo, q.hi), AggKind::Count);
            checksum = checksum.wrapping_add(ans.count);
        }
        match counts {
            None => counts = Some(checksum),
            Some(c) => assert_eq!(c, checksum, "{} disagreed", session.label()),
        }
        let t = session.totals();
        let (meta, copy) = session.index_bytes();
        println!(
            "{:<28} {:>10.2} {:>10.1} {:>11.1} {:>11} {:>9} {:>11.1}%",
            session.label(),
            t.build_ns as f64 / 1e6,
            t.wall_ns as f64 / 1e6,
            t.mean_latency_ns() / 1e3,
            meta,
            copy,
            100.0 * t.zones_skipped as f64 / t.zones_probed.max(1) as f64
        );
    }
    println!("\nall strategies returned identical answers.");
}

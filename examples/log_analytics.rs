//! Log analytics under continuous ingestion: appends interleave with an
//! investigation workload whose focus keeps moving.
//!
//! Compares the adaptive zonemap against the static zonemap and plain
//! scans while the store doubles in size and the analyst's query hotspot
//! jumps twice — the combined stress the adaptive framework targets.
//!
//! ```text
//! cargo run --release --example log_analytics
//! ```

use adaptive_data_skipping::core::adaptive::AdaptiveConfig;
use adaptive_data_skipping::core::RangePredicate;
use adaptive_data_skipping::engine::{AggKind, ColumnSession, Strategy};
use adaptive_data_skipping::workloads::{data, queries};

fn main() {
    let initial = 1_000_000usize;
    let final_rows = 2_000_000usize;
    let domain = final_rows as i64;
    let batches = 20usize;
    let per_batch_rows = (final_rows - initial) / batches;
    let queries_per_batch = 15usize;

    // The full log stream: event ids arrive almost in order.
    let stream = data::almost_sorted(final_rows, domain, 0.02, 64, 3);
    // Investigation: hotspot jumps between three incident windows.
    let qs = queries::shifting_hotspot(batches * queries_per_batch, domain, 0.002, 3, 0.08, 99);

    let strategies = vec![
        Strategy::FullScan,
        Strategy::StaticZonemap { zone_rows: 4096 },
        Strategy::Adaptive(AdaptiveConfig {
            revival_base_queries: Some(64),
            ..AdaptiveConfig::default()
        }),
    ];

    println!("log store: {initial} rows growing to {final_rows} across {batches} append batches");
    println!(
        "workload: {} range counts, hotspot shifts twice\n",
        qs.len()
    );
    println!(
        "{:<28} {:>14} {:>16} {:>14} {:>12}",
        "strategy", "query ms", "maintenance ms", "mean µs", "checksum"
    );

    let mut checksums = Vec::new();
    for strategy in &strategies {
        let mut session = ColumnSession::new(stream[..initial].to_vec(), strategy);
        let mut maintenance_ns = 0u64;
        let mut checksum = 0u64;
        let mut qi = 0;
        for b in 0..batches {
            for _ in 0..queries_per_batch {
                let q = qs[qi];
                qi += 1;
                let (ans, _) = session.query(RangePredicate::between(q.lo, q.hi), AggKind::Count);
                checksum = checksum.wrapping_add(ans.count);
            }
            let start = initial + b * per_batch_rows;
            maintenance_ns += session.append(&stream[start..start + per_batch_rows]);
        }
        let t = session.totals();
        println!(
            "{:<28} {:>14.1} {:>16.2} {:>14.1} {:>12}",
            session.label(),
            t.wall_ns as f64 / 1e6,
            (maintenance_ns + t.build_ns) as f64 / 1e6,
            t.mean_latency_ns() / 1e3,
            checksum
        );
        checksums.push(checksum);
    }
    assert!(
        checksums.windows(2).all(|w| w[0] == w[1]),
        "strategies disagreed — soundness bug"
    );
    println!("\nall strategies agree on every answer; adaptive pays no build or re-index cost.");
}

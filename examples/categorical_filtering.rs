//! Data skipping on string columns via order-preserving dictionary codes.
//!
//! An access-log scenario: a `country` column with heavy batching (CDN
//! edges flush per-region) and a long tail of values. String range,
//! equality, and prefix predicates all become integer code ranges, so the
//! adaptive zonemap skips them like any numeric column — including the
//! dictionary-miss fast path, where a query is answered from the
//! dictionary alone.
//!
//! ```text
//! cargo run --release --example categorical_filtering
//! ```

use adaptive_data_skipping::core::adaptive::AdaptiveConfig;
use adaptive_data_skipping::engine::{Strategy, StringColumnSession};

fn synth_country(i: usize) -> String {
    // Batches of 50k rows per region block, with a rotating block order —
    // positionally clustered values, the case zonemaps love.
    const REGIONS: [&str; 12] = [
        "argentina",
        "australia",
        "austria",
        "belgium",
        "brazil",
        "canada",
        "chile",
        "denmark",
        "france",
        "germany",
        "japan",
        "portugal",
    ];
    REGIONS[(i / 50_000) % REGIONS.len()].to_string()
}

fn main() {
    let n = 2_400_000usize;
    println!("building {n}-row country column (region-batched ingestion)…");
    let values: Vec<String> = (0..n).map(synth_country).collect();

    let mut session =
        StringColumnSession::new(&values, &Strategy::Adaptive(AdaptiveConfig::default()));
    println!(
        "dictionary: {} distinct values; index: {}\n",
        session.cardinality(),
        session.index_name()
    );

    let show = |label: &str, count: u64, m: &adaptive_data_skipping::engine::QueryMetrics| {
        println!(
            "{label:<42} {count:>8} rows   scanned {:>9}   {:>8.2}ms",
            m.rows_scanned,
            m.wall_ns as f64 / 1e6
        );
    };

    // Repeat the dashboard's favourite filter: first run builds metadata,
    // later runs skip.
    for i in 1..=3 {
        let (c, m) = session.count_eq("germany");
        show(&format!("#{i} country = 'germany'"), c, &m);
    }
    let (c, m) = session.count_between("belgium", "canada");
    show("country BETWEEN 'belgium' AND 'canada'", c, &m);
    let (c, m) = session.count_prefix("a");
    show("country LIKE 'a%'", c, &m);
    let (c, m) = session.count_eq("atlantis");
    show("country = 'atlantis' (dictionary miss)", c, &m);

    // Ingest a batch containing an unseen country: the code space remaps
    // and the index is rebuilt — the honest price of ordered dictionaries.
    let batch: Vec<String> = (0..10_000)
        .map(|i| {
            if i % 100 == 0 {
                "iceland".to_string()
            } else {
                "japan".to_string()
            }
        })
        .collect();
    let (effect, ns) = session.append(&batch);
    println!(
        "\nappend of 10k rows incl. unseen 'iceland': {effect:?}, maintenance {:.2}ms, rebuilds {}",
        ns as f64 / 1e6,
        session.rebuilds()
    );
    let (c, m) = session.count_eq("iceland");
    show("country = 'iceland' (after remap)", c, &m);

    let t = session.totals();
    println!(
        "\ntotals: {} queries, {:.1}ms, {} rows scanned across all queries",
        t.queries,
        t.wall_ns as f64 / 1e6,
        t.rows_scanned
    );
}

//! Quickstart: attach an adaptive zonemap to a column and watch queries
//! get cheaper.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use adaptive_data_skipping::core::adaptive::AdaptiveConfig;
use adaptive_data_skipping::core::RangePredicate;
use adaptive_data_skipping::engine::{AggKind, ColumnSession, Strategy};

fn main() {
    // A 4M-row column of "timestamps": mostly sorted, as an ingestion
    // pipeline would produce.
    let n = 4_000_000usize;
    let data = adaptive_data_skipping::workloads::data::almost_sorted(n, n as i64, 0.05, 256, 7);

    let mut session = ColumnSession::new(data, &Strategy::Adaptive(AdaptiveConfig::default()))
        .record_history(true);

    // A dashboard asks for the same recent window a few times.
    let pred = RangePredicate::between(3_500_000, 3_550_000);
    println!("query               count     rows scanned   zones skipped   latency");
    for i in 1..=6 {
        let (answer, m) = session.query(pred, AggKind::Count);
        println!(
            "#{i} [3.50M..3.55M]  {:>8}   {:>12}   {:>13}   {:>6.2}ms",
            answer.count,
            m.rows_scanned,
            m.zones_skipped,
            m.wall_ns as f64 / 1e6
        );
    }

    // Other aggregates share the same pruning.
    let (sum, _) = session.query(pred, AggKind::Sum);
    let (min, _) = session.query(pred, AggKind::Min);
    let (max, _) = session.query(pred, AggKind::Max);
    println!(
        "\nSUM={:.0}  MIN={}  MAX={}",
        sum.sum.expect("sum aggregate"),
        min.min.expect("matches exist"),
        max.max.expect("matches exist")
    );

    // New data arrives; the index maintains itself and stays correct.
    let more: Vec<i64> = (n as i64..n as i64 + 10_000).collect();
    session.append(&more);
    let fresh = session.count(RangePredicate::at_least(n as i64));
    println!("rows appended: 10000, query over fresh range finds {fresh}");

    let t = session.totals();
    println!(
        "\nsession totals: {} queries, {:.1}ms wall, {:.1}% of probed zones skipped",
        t.queries,
        t.wall_ns as f64 / 1e6,
        100.0 * t.zones_skipped as f64 / t.zones_probed.max(1) as f64
    );
    let (meta, copy) = session.index_bytes();
    println!("index footprint: {meta} metadata bytes, {copy} copied-data bytes");
}

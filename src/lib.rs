//! # adaptive-data-skipping — umbrella crate
//!
//! Reproduction of Qin & Idreos, *Adaptive Data Skipping in Main-Memory
//! Systems* (SIGMOD 2016). This crate re-exports the workspace's public
//! API so examples and downstream users need a single dependency:
//!
//! * [`storage`] — main-memory column store substrate;
//! * [`core`] — the data-skipping framework and adaptive zonemaps;
//! * [`baselines`] — full scan, sorted oracle, column imprints, cracking;
//! * [`engine`] — scan executor, sessions, strategies;
//! * [`workloads`] — synthetic data and query generators.
//!
//! ## Quickstart
//!
//! ```
//! use adaptive_data_skipping::engine::{ColumnSession, Strategy, AggKind};
//! use adaptive_data_skipping::core::{adaptive::AdaptiveConfig, RangePredicate};
//!
//! let data: Vec<i64> = (0..100_000).collect();
//! let mut session = ColumnSession::new(data, &Strategy::Adaptive(AdaptiveConfig::default()));
//! let pred = RangePredicate::between(1_000, 1_999);
//! let (_, first) = session.query(pred, AggKind::Count);
//! let (answer, second) = session.query(pred, AggKind::Count);
//! assert_eq!(answer.count, 1_000);
//! // The repeat query never scans more, and skips strictly more zones:
//! // the first query's scan built the metadata the second one exploits.
//! assert!(second.rows_scanned <= first.rows_scanned);
//! assert!(second.zones_skipped > first.zones_skipped);
//! ```

#![warn(missing_docs)]

pub use ads_baselines as baselines;
pub use ads_core as core;
pub use ads_engine as engine;
pub use ads_storage as storage;
pub use ads_workloads as workloads;

//! Integration tests for the framework extensions: string skipping,
//! disjunctions, and index-level activation — exercised together with
//! appends and strategy switches.

use adaptive_data_skipping::core::adaptive::AdaptiveConfig;
use adaptive_data_skipping::core::RangePredicate;
use adaptive_data_skipping::engine::{
    execute_disjunction, execute_reference, in_list, AggKind, ColumnSession, Strategy,
    StringColumnSession,
};
use adaptive_data_skipping::workloads::{data, DataSpec};

fn string_stream(n: usize) -> Vec<String> {
    // Skewed, batched keys with a long tail.
    (0..n)
        .map(|i| {
            if i % 97 == 0 {
                format!("tail{:04}", i % 1000)
            } else {
                format!("hot{:02}", (i / 1000) % 20)
            }
        })
        .collect()
}

#[test]
fn string_sessions_survive_mixed_append_and_query_storms() {
    let full = string_stream(40_000);
    let initial = 20_000usize;
    for strategy in [
        Strategy::FullScan,
        Strategy::StaticZonemap { zone_rows: 512 },
        Strategy::Adaptive(AdaptiveConfig::default()),
    ] {
        let mut s = StringColumnSession::new(&full[..initial], &strategy);
        let mut grown = initial;
        while grown < full.len() {
            let next = (grown + 4000).min(full.len());
            s.append(&full[grown..next]);
            grown = next;
            for probe in ["hot05", "hot19", "tail0097", "absent"] {
                let expected = full[..grown].iter().filter(|v| v.as_str() == probe).count() as u64;
                let (got, _) = s.count_eq(probe);
                assert_eq!(got, expected, "{} eq {probe} at {grown}", s.index_name());
            }
            let expected_prefix = full[..grown]
                .iter()
                .filter(|v| v.starts_with("tail"))
                .count() as u64;
            let (got, _) = s.count_prefix("tail");
            assert_eq!(got, expected_prefix, "{} prefix", s.index_name());
        }
    }
}

#[test]
fn string_positions_round_trip_rows() {
    let values = string_stream(5000);
    let mut s = StringColumnSession::new(&values, &Strategy::StaticZonemap { zone_rows: 256 });
    let (positions, _) = s.positions_prefix("hot01");
    assert!(!positions.is_empty());
    for &p in &positions {
        assert!(s.value(p as usize).starts_with("hot01"));
    }
    assert!(positions.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
}

#[test]
fn disjunctions_match_reference_across_distributions_and_appends() {
    for spec in [DataSpec::Sorted, DataSpec::Uniform, DataSpec::MixedRegions] {
        let mut column = spec.generate(30_000, 50_000, 3);
        for strategy in Strategy::roster() {
            let mut idx = strategy.build_index(&column);
            let preds = vec![
                RangePredicate::between(100i64, 900),
                RangePredicate::between(25_000, 26_000),
                RangePredicate::point(49_999),
            ];
            let (got, _) =
                execute_disjunction(&column, idx.as_mut(), preds.clone(), AggKind::Count);
            let expected: u64 = preds
                .iter()
                .map(|p| execute_reference(&column, *p, AggKind::Count).count)
                .sum();
            assert_eq!(
                got.count,
                expected,
                "{} on {}",
                strategy.label(),
                spec.label()
            );

            // Append and re-ask.
            let extra = data::uniform(2_000, 50_000, 9);
            let old = column.len();
            column.extend_from_slice(&extra);
            idx.on_append(&column[old..], &column);
            let (got2, _) =
                execute_disjunction(&column, idx.as_mut(), preds.clone(), AggKind::Count);
            let expected2: u64 = preds
                .iter()
                .map(|p| execute_reference(&column, *p, AggKind::Count).count)
                .sum();
            assert_eq!(got2.count, expected2, "{} post-append", strategy.label());
            column.truncate(old);
        }
    }
}

#[test]
fn in_list_skipping_on_session_data() {
    let column: Vec<i64> = (0..50_000).collect();
    let mut idx = Strategy::Adaptive(AdaptiveConfig::default()).build_index(&column);
    let preds = in_list(&[7i64, 7, 25_000, 49_999, 60_000]);
    // Warm up (adaptive builds metadata), then expect localized scans.
    let _ = execute_disjunction(&column, idx.as_mut(), preds.clone(), AggKind::Count);
    let (got, m) = execute_disjunction(&column, idx.as_mut(), preds, AggKind::Count);
    assert_eq!(got.count, 3);
    assert!(
        m.rows_scanned < 50_000 / 2,
        "IN-list should not scan the world: {}",
        m.rows_scanned
    );
}

#[test]
fn activated_static_tracks_best_of_both_worlds() {
    let queries: Vec<RangePredicate<i64>> = (0..200)
        .map(|q| {
            let lo = (q * 7919) % 900_000;
            RangePredicate::between(lo, lo + 10_000)
        })
        .collect();

    // Sorted data: wrapper must not cost skipping.
    let sorted = DataSpec::Sorted.generate(100_000, 1_000_000, 1);
    let mut wrapped = ColumnSession::new(
        sorted.clone(),
        &Strategy::StaticZonemap { zone_rows: 256 }.activated(),
    );
    let mut bare = ColumnSession::new(sorted, &Strategy::StaticZonemap { zone_rows: 256 });
    for pred in &queries {
        assert_eq!(wrapped.count(*pred), bare.count(*pred));
    }
    assert_eq!(
        wrapped.totals().rows_scanned,
        bare.totals().rows_scanned,
        "wrapper must stay out of the way on sorted data"
    );

    // Uniform data: wrapper must cut the probe bill.
    let uniform = DataSpec::Uniform.generate(100_000, 1_000_000, 2);
    let mut wrapped = ColumnSession::new(
        uniform.clone(),
        &Strategy::StaticZonemap { zone_rows: 256 }.activated(),
    );
    let mut bare = ColumnSession::new(uniform, &Strategy::StaticZonemap { zone_rows: 256 });
    for pred in &queries {
        assert_eq!(wrapped.count(*pred), bare.count(*pred));
    }
    assert!(
        wrapped.totals().zones_probed < bare.totals().zones_probed / 2,
        "dormancy should cut probes: {} vs {}",
        wrapped.totals().zones_probed,
        bare.totals().zones_probed
    );
}

#[test]
fn generic_value_types_work_end_to_end() {
    // The whole stack is generic over DataValue; exercise u64 and f64.
    let u_data: Vec<u64> = (0..20_000u64).map(|i| (i * 2654435761) % 100_000).collect();
    for strategy in Strategy::roster() {
        let mut idx = strategy.build_index(&u_data);
        let pred = RangePredicate::between(10_000u64, 20_000);
        let got =
            adaptive_data_skipping::engine::execute(&u_data, idx.as_mut(), pred, AggKind::Count);
        let want = execute_reference(&u_data, pred, AggKind::Count);
        assert_eq!(got.0.count, want.count, "{} u64", strategy.label());
    }

    let f_data: Vec<f64> = (0..20_000)
        .map(|i| ((i * 37) % 1000) as f64 / 7.0)
        .collect();
    for strategy in Strategy::roster() {
        let mut idx = strategy.build_index(&f_data);
        let pred = RangePredicate::between(10.0, 100.0);
        let got =
            adaptive_data_skipping::engine::execute(&f_data, idx.as_mut(), pred, AggKind::Sum);
        let want = execute_reference(&f_data, pred, AggKind::Sum);
        assert_eq!(got.0.count, want.count, "{} f64", strategy.label());
        let (a, b) = (got.0.sum.unwrap(), want.sum.unwrap());
        assert!((a - b).abs() < 1e-6, "{} f64 sum", strategy.label());
    }
}

#[test]
fn f64_columns_with_nan_stay_sound() {
    let mut f_data: Vec<f64> = (0..5000).map(|i| (i % 100) as f64).collect();
    f_data[777] = f64::NAN;
    f_data[4001] = f64::NEG_INFINITY;
    for strategy in [
        Strategy::StaticZonemap { zone_rows: 256 },
        Strategy::Adaptive(AdaptiveConfig::default()),
        Strategy::FullScan,
    ] {
        let mut idx = strategy.build_index(&f_data);
        for _ in 0..3 {
            let pred = RangePredicate::between(10.0, 20.0);
            let (got, _) = adaptive_data_skipping::engine::execute(
                &f_data,
                idx.as_mut(),
                pred,
                AggKind::Count,
            );
            let want = execute_reference(&f_data, pred, AggKind::Count);
            assert_eq!(got.count, want.count, "{}", strategy.label());
        }
        // Predicates that include the infinities. NaN sorts above +inf
        // under IEEE totalOrder, so it matches no numeric range — the
        // same "comparisons with NaN are false" semantics SQL uses.
        let wide = RangePredicate::between(f64::NEG_INFINITY, f64::INFINITY);
        let (got, _) =
            adaptive_data_skipping::engine::execute(&f_data, idx.as_mut(), wide, AggKind::Count);
        assert_eq!(
            got.count,
            4999,
            "{} wide excludes the NaN row",
            strategy.label()
        );
        // RangePredicate::all() uses MAX_VALUE = +inf for f64, same story.
        let all = RangePredicate::<f64>::all();
        let (got, _) =
            adaptive_data_skipping::engine::execute(&f_data, idx.as_mut(), all, AggKind::Count);
        assert_eq!(got.count, 4999, "{}", strategy.label());
    }
}

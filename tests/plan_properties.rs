//! Property-style tests for the conjunction probe planner: whatever the
//! planner decides — cost-based order, the legacy fixed order, reversed
//! order, or no probes at all — the *answer* must be bit-identical.
//!
//! Each case replays one randomised scenario across many deterministic
//! seeds (the repo's lightweight property-testing idiom, see
//! `tests/properties.rs`): random data shape (sorted / clustered /
//! uniform), 2–3 conjuncts including a `u64` column whose values exceed
//! 2^53 (where an `f64` bounds round-trip would corrupt metadata), and a
//! shared query sequence driven through twin sessions per plan mode.
//!
//! The aggregate column holds small integers so every partial SUM is an
//! exactly-representable f64 — summation order is immaterial and the f64
//! results can be compared with `==` across modes.
//!
//! Determinism is additionally asserted *within* a mode: two fresh
//! sessions fed the same queries must produce identical plan traces,
//! pruning metrics, and metadata footprints. (Cross-mode metadata
//! equality is deliberately NOT asserted: different probe orders feed
//! adaptive structures different observations, so their zone layouts
//! legitimately diverge — only answers must agree.)

use adaptive_data_skipping::core::adaptive::AdaptiveConfig;
use adaptive_data_skipping::core::RangePredicate;
use adaptive_data_skipping::engine::{AnyPredicate, PlanMode, Strategy, TableSession};
use adaptive_data_skipping::storage::{Column, Table};
use adaptive_data_skipping::workloads::data;
use ads_rng::StdRng;

/// Cases per property — the budget an external framework would default to.
const CASES: u64 = 64;

/// Values on the far side of f64 integer exactness.
const P53: u64 = 1 << 53;

const DOMAIN: i64 = 100_000;

/// Small adaptive config so structural churn happens at test scale.
fn test_config() -> AdaptiveConfig {
    AdaptiveConfig {
        target_zone_rows: 64,
        min_zone_rows: 8,
        max_zone_rows: 512,
        split_after_wasted: 1,
        merge_after_probes: 2,
        deactivate_after_probes: 4,
        maintenance_every: 2,
        revival_base_queries: Some(8),
        ..AdaptiveConfig::default()
    }
}

fn make_table(case: u64, rng: &mut StdRng) -> Table {
    let n = rng.gen_range(1000usize..4000);
    let a: Vec<i64> = match case % 3 {
        0 => data::sorted(n, DOMAIN),
        1 => data::clustered(n, 8, 0.05, DOMAIN, case),
        _ => data::uniform(n, DOMAIN, case),
    };
    let b = data::uniform(n, DOMAIN, case.wrapping_mul(31).wrapping_add(7));
    // u64 column straddling 2^53: odd offsets at this magnitude are not
    // representable as f64 (spacing is 2), so any f64 round-trip of scan
    // bounds would visibly corrupt zone metadata.
    let u: Vec<u64> = data::uniform(n, DOMAIN, case.wrapping_mul(17).wrapping_add(3))
        .into_iter()
        // narrowing: uniform() yields values in 0..DOMAIN, all non-negative.
        .map(|v| P53 + v as u64)
        .collect();
    // Small-integer aggregate column: partial sums stay far below 2^53,
    // so f64 summation is exact in any order.
    let s = data::uniform(n, 1000, case.wrapping_mul(101).wrapping_add(13));
    let mut t = Table::new("t");
    t.add_column("a", Column::from_values(a)).expect("fresh");
    t.add_column("b", Column::from_values(b)).expect("fresh");
    t.add_column("u", Column::from_values(u)).expect("fresh");
    t.add_column("s", Column::from_values(s)).expect("fresh");
    t
}

fn gen_i64_pred(rng: &mut StdRng) -> RangePredicate<i64> {
    let lo = rng.gen_range(0..DOMAIN);
    let w = rng.gen_range(0..DOMAIN / 2);
    RangePredicate::between(lo, (lo + w).min(DOMAIN))
}

fn gen_u64_pred(rng: &mut StdRng) -> RangePredicate<u64> {
    let lo = rng.gen_range(0..DOMAIN);
    let w = rng.gen_range(0..DOMAIN / 2);
    // narrowing: lo and lo + w are in 0..=3*DOMAIN/2, non-negative.
    RangePredicate::between(P53 + lo as u64, P53 + (lo + w) as u64)
}

/// One query: conjuncts over a subset of {a, u, b}, always ≥ 2 of them.
fn gen_conjuncts(rng: &mut StdRng) -> Vec<(&'static str, AnyPredicate)> {
    let mut c: Vec<(&'static str, AnyPredicate)> = vec![
        ("a", AnyPredicate::I64(gen_i64_pred(rng))),
        ("u", AnyPredicate::U64(gen_u64_pred(rng))),
    ];
    if rng.gen_range(0..2) == 1 {
        c.push(("b", AnyPredicate::I64(gen_i64_pred(rng))));
    }
    c
}

fn reference(t: &Table, conjuncts: &[(&str, AnyPredicate)]) -> (u64, f64) {
    let s = t.typed_column::<i64>("s").expect("i64 column");
    let mut count = 0u64;
    let mut sum = 0.0f64;
    for i in 0..t.num_rows() {
        let ok = conjuncts.iter().all(|(name, p)| match p {
            AnyPredicate::I64(p) => {
                p.matches(t.typed_column::<i64>(name).expect("i64 column").value(i))
            }
            AnyPredicate::U64(p) => {
                p.matches(t.typed_column::<u64>(name).expect("u64 column").value(i))
            }
            _ => unreachable!("test uses i64/u64 predicates only"),
        });
        if ok {
            count += 1;
            sum += s.value(i) as f64;
        }
    }
    (count, sum)
}

fn session(t: &Table, mode: PlanMode) -> TableSession {
    let mut ts = TableSession::new(
        t.clone(),
        &Strategy::Adaptive(test_config()),
        &["a", "b", "u"],
    )
    .expect("base-coordinate strategy");
    ts.set_plan_mode(mode);
    ts
}

#[test]
fn all_plan_modes_agree_with_reference() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5007 ^ case);
        let t = make_table(case, &mut rng);
        let queries: Vec<Vec<(&str, AnyPredicate)>> =
            (0..6).map(|_| gen_conjuncts(&mut rng)).collect();
        let mut sessions = [
            ("planned", session(&t, PlanMode::Planned)),
            ("fixed", session(&t, PlanMode::FixedOrder)),
            ("reversed", session(&t, PlanMode::Reversed)),
            ("fallback", session(&t, PlanMode::ForcedFallback)),
        ];
        for (qi, q) in queries.iter().enumerate() {
            let (ref_count, ref_sum) = reference(&t, q);
            for (label, ts) in &mut sessions {
                let (count, sum, _) = ts.sum_conjunction(q, "s").expect("valid conjunction");
                assert_eq!(count, ref_count, "case {case} query {qi} mode {label}");
                // Exact: every partial sum of small integers is an exactly
                // representable f64, so order cannot perturb the result.
                assert_eq!(sum, ref_sum, "case {case} query {qi} mode {label}");
            }
        }
        // The fallback session must never have probed anything.
        let (_, fb) = &sessions[3];
        assert_eq!(fb.totals().zones_probed, 0, "case {case}");
        assert_eq!(fb.totals().plan_fallbacks, queries.len() as u64);
    }
}

#[test]
fn planned_mode_is_deterministic() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5008 ^ case);
        let t = make_table(case, &mut rng);
        let queries: Vec<Vec<(&str, AnyPredicate)>> =
            (0..6).map(|_| gen_conjuncts(&mut rng)).collect();
        let mut one = session(&t, PlanMode::Planned);
        let mut two = session(&t, PlanMode::Planned);
        for (qi, q) in queries.iter().enumerate() {
            let (c1, s1, m1) = one.sum_conjunction(q, "s").expect("valid conjunction");
            let (c2, s2, m2) = two.sum_conjunction(q, "s").expect("valid conjunction");
            assert_eq!((c1, s1), (c2, s2), "case {case} query {qi}");
            // Deterministic metric fields (timings excluded by design).
            assert_eq!(
                (m1.zones_probed, m1.zones_skipped, m1.rows_scanned),
                (m2.zones_probed, m2.zones_skipped, m2.rows_scanned),
                "case {case} query {qi}"
            );
            assert_eq!(
                (m1.rows_full_match, m1.conjuncts_probed, m1.plan_fallback),
                (m2.rows_full_match, m2.conjuncts_probed, m2.plan_fallback),
                "case {case} query {qi}"
            );
            assert_eq!(one.last_plan(), two.last_plan(), "case {case} query {qi}");
        }
        for col in ["a", "b", "u"] {
            assert_eq!(
                one.index_metadata_bytes(col),
                two.index_metadata_bytes(col),
                "case {case} column {col}"
            );
        }
    }
}

#[test]
fn planned_never_probes_more_zones_than_fixed_on_static_metadata() {
    // With a static zonemap the metadata never changes, so this IS a
    // theorem: the fixed order probes every zone of every conjunct, while
    // the planner probes a subset of zones (restriction) of a subset of
    // conjuncts (gating). Rows scanned may legitimately *rise* when a
    // probe is gated off — that is the trade the cost model prices — so
    // only probe work is bounded here; the scan/probe balance itself is
    // measured empirically by experiment E18.
    for case in 0..8 {
        let mut rng = StdRng::seed_from_u64(0x5009 ^ case);
        let t = make_table(case, &mut rng);
        let q = gen_conjuncts(&mut rng);
        let strat = Strategy::StaticZonemap { zone_rows: 128 };
        let mut planned =
            TableSession::new(t.clone(), &strat, &["a", "b", "u"]).expect("base coords");
        let mut fixed =
            TableSession::new(t.clone(), &strat, &["a", "b", "u"]).expect("base coords");
        fixed.set_plan_mode(PlanMode::FixedOrder);
        for round in 0..8 {
            let (cp, mp) = planned.count_conjunction(&q).expect("valid conjunction");
            let (cf, mf) = fixed.count_conjunction(&q).expect("valid conjunction");
            assert_eq!(cp, cf, "case {case} round {round}");
            assert!(
                mp.zones_probed <= mf.zones_probed,
                "case {case} round {round}: planned probed {} zones vs fixed {}",
                mp.zones_probed,
                mf.zones_probed
            );
        }
    }
}

//! Multi-column conjunction correctness across strategies and shapes.

use adaptive_data_skipping::core::adaptive::AdaptiveConfig;
use adaptive_data_skipping::core::RangePredicate;
use adaptive_data_skipping::engine::{AnyPredicate, Strategy, TableSession};
use adaptive_data_skipping::storage::{Column, Table};
use adaptive_data_skipping::workloads::data;

const N: usize = 30_000;
const DOMAIN: i64 = 100_000;

fn table() -> Table {
    let mut t = Table::new("t");
    t.add_column("a", Column::from_values(data::sorted(N, DOMAIN)))
        .expect("fresh column");
    t.add_column("b", Column::from_values(data::uniform(N, DOMAIN, 1)))
        .expect("fresh column");
    t.add_column(
        "c",
        Column::from_values(data::clustered(N, 16, 0.02, DOMAIN, 2)),
    )
    .expect("fresh column");
    t.add_column(
        "f",
        Column::from_values(
            data::uniform(N, 1000, 3)
                .into_iter()
                .map(|v| v as f64 / 10.0)
                .collect::<Vec<f64>>(),
        ),
    )
    .expect("fresh column");
    t
}

fn base_strategies() -> Vec<Strategy> {
    vec![
        Strategy::FullScan,
        Strategy::StaticZonemap { zone_rows: 1024 },
        Strategy::Adaptive(AdaptiveConfig::default()),
        Strategy::Imprints {
            values_per_line: 8,
            bins: 32,
        },
    ]
}

fn reference(t: &Table, preds: &[(&str, AnyPredicate)]) -> u64 {
    (0..t.num_rows())
        .filter(|&i| {
            preds.iter().all(|(name, p)| match p {
                AnyPredicate::I64(p) => {
                    p.matches(t.typed_column::<i64>(name).expect("i64 column").value(i))
                }
                AnyPredicate::F64(p) => {
                    p.matches(t.typed_column::<f64>(name).expect("f64 column").value(i))
                }
                _ => unreachable!("test uses i64/f64 only"),
            })
        })
        .count() as u64
}

#[test]
fn two_and_three_way_conjunctions_match_reference() {
    let t = table();
    let shapes: Vec<Vec<(&str, AnyPredicate)>> = vec![
        vec![
            (
                "a",
                AnyPredicate::I64(RangePredicate::between(10_000, 30_000)),
            ),
            ("b", AnyPredicate::I64(RangePredicate::between(0, 50_000))),
        ],
        vec![
            ("a", AnyPredicate::I64(RangePredicate::between(0, 99_999))),
            (
                "b",
                AnyPredicate::I64(RangePredicate::between(40_000, 41_000)),
            ),
            ("c", AnyPredicate::I64(RangePredicate::between(0, 60_000))),
        ],
        vec![
            ("a", AnyPredicate::I64(RangePredicate::at_least(90_000))),
            ("f", AnyPredicate::F64(RangePredicate::between(25.0, 75.0))),
        ],
    ];
    for strategy in base_strategies() {
        let mut ts = TableSession::new(t.clone(), &strategy, &["a", "b", "c", "f"])
            .expect("base-coordinate strategy");
        for (si, shape) in shapes.iter().enumerate() {
            let expected = reference(&t, shape);
            // Twice: adaptive structures reorganise between runs.
            for round in 0..2 {
                let (count, _) = ts.count_conjunction(shape).expect("valid conjunction");
                assert_eq!(
                    count,
                    expected,
                    "{} shape {si} round {round}",
                    strategy.label()
                );
            }
        }
    }
}

#[test]
fn empty_and_full_conjunctions() {
    let t = table();
    for strategy in base_strategies() {
        let mut ts =
            TableSession::new(t.clone(), &strategy, &["a", "b"]).expect("base-coordinate strategy");
        // Contradictory conjunction: a high AND a low.
        let (count, _) = ts
            .count_conjunction(&[
                ("a", AnyPredicate::I64(RangePredicate::at_least(90_000))),
                ("a", AnyPredicate::I64(RangePredicate::at_most(10_000))),
            ])
            .expect("valid conjunction");
        assert_eq!(count, 0, "{}", strategy.label());
        // All-pass conjunction.
        let (count, _) = ts
            .count_conjunction(&[
                ("a", AnyPredicate::I64(RangePredicate::all())),
                ("b", AnyPredicate::I64(RangePredicate::all())),
            ])
            .expect("valid conjunction");
        assert_eq!(count, N as u64, "{}", strategy.label());
    }
}

#[test]
fn sum_conjunction_over_unfiltered_column() {
    let t = table();
    let shape = [("a", AnyPredicate::I64(RangePredicate::between(0, 49_999)))];
    let expected_count = reference(&t, &shape);
    let expected_sum: f64 = {
        let a = t.typed_column::<i64>("a").expect("i64 column");
        let f = t.typed_column::<f64>("f").expect("f64 column");
        (0..t.num_rows())
            .filter(|&i| (0..=49_999).contains(&a.value(i)))
            .map(|i| f.value(i))
            .sum()
    };
    for strategy in base_strategies() {
        let mut ts =
            TableSession::new(t.clone(), &strategy, &["a"]).expect("base-coordinate strategy");
        let (count, sum, _) = ts.sum_conjunction(&shape, "f").expect("valid sum");
        assert_eq!(count, expected_count, "{}", strategy.label());
        assert!(
            (sum - expected_sum).abs() < 1e-6,
            "{}: {sum} vs {expected_sum}",
            strategy.label()
        );
    }
}

#[test]
fn adaptive_indexes_do_adapt_through_table_sessions() {
    // Regression test: multi-column scans must produce zone-aligned
    // observations so adaptive zonemaps build metadata and start skipping.
    let t = table();
    let mut ts = TableSession::new(
        t,
        &Strategy::Adaptive(AdaptiveConfig::default()),
        &["a", "b"],
    )
    .expect("base-coordinate strategy");
    let shape = [
        (
            "a",
            AnyPredicate::I64(RangePredicate::between(10_000, 11_000)),
        ),
        ("b", AnyPredicate::I64(RangePredicate::all())),
    ];
    let (_, first) = ts.count_conjunction(&shape).expect("valid conjunction");
    let mut last = first;
    for _ in 0..4 {
        let (_, m) = ts.count_conjunction(&shape).expect("valid conjunction");
        last = m;
    }
    assert!(
        last.rows_scanned < first.rows_scanned / 2,
        "adaptation through table sessions: first {} vs later {}",
        first.rows_scanned,
        last.rows_scanned
    );
}

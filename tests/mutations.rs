//! Mutation-path equivalence suite: a store under randomized
//! delete/update/append/query interleavings must answer every aggregate
//! bit-identically (f64 SUM compared by bit pattern, POSITIONS by exact
//! rowid list) to a naive `Vec` recompute — at every shard count, every
//! reader count, in async, frozen, and inline modes, and both before
//! and after compaction physically reclaims the tombstones.
//!
//! The driver is sequential and every mutation blocks for its
//! publication ack, so each query observes exactly the mutations issued
//! before it: the answer stream is deterministic per seed and must also
//! agree *across* the service shapes (asserted via checksum).

use adaptive_data_skipping::core::adaptive::AdaptiveConfig;
use adaptive_data_skipping::core::RangePredicate;
use adaptive_data_skipping::engine::AggKind;
use adaptive_data_skipping::workloads::data;
use ads_rng::StdRng;
use ads_server::{AdaptationMode, Mutation, QueryService, ServerConfig};

const DOMAIN: i64 = 10_000;

const AGGS: [AggKind; 5] = [
    AggKind::Count,
    AggKind::Sum,
    AggKind::Min,
    AggKind::Max,
    AggKind::Positions,
];

/// The (mode, shards, readers) shapes every seed is replayed over.
const SHAPES: [(AdaptationMode, usize, usize); 6] = [
    (AdaptationMode::Async, 1, 1),
    (AdaptationMode::Async, 1, 4),
    (AdaptationMode::Async, 8, 1),
    (AdaptationMode::Async, 8, 4),
    (AdaptationMode::Frozen, 8, 4),
    (AdaptationMode::Inline, 8, 1),
];

/// Small zones so structural adaptation happens at test scale.
fn test_config() -> AdaptiveConfig {
    AdaptiveConfig {
        target_zone_rows: 64,
        min_zone_rows: 8,
        max_zone_rows: 512,
        maintenance_every: 2,
        ..AdaptiveConfig::default()
    }
}

/// The naive mirror: service semantics on a plain `Vec`. Out-of-place
/// exactly like the store — update tombstones the old row and appends
/// the new value — so global rowids stay aligned until both compact.
struct Model {
    rows: Vec<i64>,
    dead: Vec<bool>,
    dead_count: usize,
}

impl Model {
    fn new(data: &[i64]) -> Self {
        Model {
            rows: data.to_vec(),
            dead: vec![false; data.len()],
            dead_count: 0,
        }
    }

    fn apply(&mut self, m: Mutation<i64>) -> bool {
        match m {
            Mutation::Delete(row) => {
                if self.dead[row] {
                    return false;
                }
                self.dead[row] = true;
                self.dead_count += 1;
                true
            }
            Mutation::Update(row, v) => {
                if self.dead[row] {
                    return false;
                }
                self.dead[row] = true;
                self.dead_count += 1;
                self.rows.push(v);
                self.dead.push(false);
                true
            }
        }
    }

    fn append(&mut self, vals: &[i64]) {
        self.rows.extend_from_slice(vals);
        self.dead.resize(self.rows.len(), false);
    }

    fn compact(&mut self) {
        let mut keep = Vec::with_capacity(self.rows.len() - self.dead_count);
        for (i, &v) in self.rows.iter().enumerate() {
            if !self.dead[i] {
                keep.push(v);
            }
        }
        self.rows = keep;
        self.dead = vec![false; self.rows.len()];
        self.dead_count = 0;
    }

    /// Live qualifying rows of `[lo, hi]` in rowid order.
    fn matches(&self, lo: i64, hi: i64) -> Vec<(usize, i64)> {
        self.rows
            .iter()
            .enumerate()
            .filter(|&(i, &v)| !self.dead[i] && v >= lo && v <= hi)
            .map(|(i, &v)| (i, v))
            .collect()
    }
}

/// Asks the service one aggregate and asserts it bit-identical to the
/// naive recompute; returns a fold of the answer for cross-shape
/// comparison.
fn verify(
    svc: &QueryService<i64>,
    model: &Model,
    lo: i64,
    hi: i64,
    agg: AggKind,
    ctx: &str,
) -> u64 {
    let rows = model.matches(lo, hi);
    let reply = svc
        .query(RangePredicate::between(lo, hi), agg)
        .expect("closed loop");
    let ans = reply.answer().expect("no deadline set");
    assert_eq!(ans.count, rows.len() as u64, "{ctx}: COUNT [{lo},{hi}]");
    let mut fold = ans.count;
    match agg {
        AggKind::Count => {}
        AggKind::Sum => {
            // Exact integer partials far below 2^53: bit-compare is fair.
            let want: f64 = rows.iter().map(|&(_, v)| v as f64).sum();
            let got = ans.sum.expect("sum aggregate carries a sum");
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{ctx}: SUM [{lo},{hi}] ({got} vs {want})"
            );
            fold = fold.wrapping_add(got.to_bits());
        }
        AggKind::Min => {
            let want = rows.iter().map(|&(_, v)| v).min();
            assert_eq!(ans.min, want, "{ctx}: MIN [{lo},{hi}]");
            fold = fold.wrapping_add(want.unwrap_or(-1) as u64);
        }
        AggKind::Max => {
            let want = rows.iter().map(|&(_, v)| v).max();
            assert_eq!(ans.max, want, "{ctx}: MAX [{lo},{hi}]");
            fold = fold.wrapping_add(want.unwrap_or(-1) as u64);
        }
        AggKind::Positions => {
            let want: Vec<u32> = rows.iter().map(|&(i, _)| i as u32).collect();
            let got = ans.positions.as_ref().expect("positions carried");
            assert_eq!(got, &want, "{ctx}: POSITIONS [{lo},{hi}]");
            fold = want
                .iter()
                .fold(fold, |f, &p| f.rotate_left(1).wrapping_add(p as u64));
        }
    }
    fold
}

/// One randomized interleaving: ~90 steps mixing queries over all five
/// aggregates with delete/update/append batches, a periodic flush
/// barrier, then the compaction epilogue. Returns the answer checksum.
fn run_interleaving(seed: u64, mode: AdaptationMode, shards: usize, readers: usize) -> u64 {
    let base = data::uniform(1_200, DOMAIN, 0x5EED ^ seed);
    let svc = QueryService::start(
        base.clone(),
        ServerConfig {
            readers,
            shards,
            adaptation: mode,
            adaptive: test_config(),
            compact_tombstone_ratio: None,
            ..ServerConfig::default()
        },
    );
    let mut model = Model::new(&base);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
    let ctx = format!("seed {seed} {} s{shards} r{readers}", mode.label());
    let mut checksum = 0u64;

    for step in 0..90 {
        match rng.gen_range(0..10u32) {
            // Queries dominate the mix so every aggregate meets every
            // mutation pattern many times per seed.
            0..=5 => {
                let lo = rng.gen_range(0..DOMAIN);
                let hi = (lo + rng.gen_range(0..DOMAIN / 4)).min(DOMAIN - 1);
                let agg = AGGS[rng.gen_range(0..AGGS.len())];
                checksum = checksum
                    .rotate_left(9)
                    .wrapping_add(verify(&svc, &model, lo, hi, agg, &ctx));
            }
            6 | 7 => {
                let batch: Vec<Mutation<i64>> = (0..rng.gen_range(1..5usize))
                    .map(|_| {
                        let row = rng.gen_range(0..model.rows.len());
                        if rng.gen_range(0..2u32) == 0 {
                            Mutation::Delete(row)
                        } else {
                            Mutation::Update(row, rng.gen_range(0..DOMAIN))
                        }
                    })
                    .collect();
                let want: usize = batch.iter().map(|&m| usize::from(model.apply(m))).sum();
                let applied = svc.mutate(batch).expect("maintenance thread lives");
                assert_eq!(applied, want, "{ctx}: applied count at step {step}");
            }
            8 => {
                let rows: Vec<i64> = (0..rng.gen_range(1..20usize))
                    .map(|_| rng.gen_range(0..DOMAIN))
                    .collect();
                model.append(&rows);
                svc.append(rows);
            }
            _ => svc.flush(),
        }
    }

    // Compaction epilogue: the same probes over all five aggregates must
    // answer identically before and after tombstones are reclaimed
    // (POSITIONS excepted — compaction renumbers rowids, so it is
    // checked against the compacted mirror instead).
    let probes: Vec<(i64, i64)> = (0..8)
        .map(|_| {
            let lo = rng.gen_range(0..DOMAIN);
            (lo, (lo + DOMAIN / 5).min(DOMAIN - 1))
        })
        .collect();
    let mut pre = Vec::new();
    for &(lo, hi) in &probes {
        for agg in AGGS {
            pre.push(verify(&svc, &model, lo, hi, agg, &ctx));
        }
    }
    let reclaimed = svc.compact().expect("maintenance thread lives");
    assert_eq!(reclaimed, model.dead_count, "{ctx}: rows reclaimed");
    model.compact();
    for (k, &(lo, hi)) in probes.iter().enumerate() {
        for (j, agg) in AGGS.into_iter().enumerate() {
            let post = verify(&svc, &model, lo, hi, agg, &ctx);
            if agg != AggKind::Positions {
                assert_eq!(
                    post,
                    pre[k * AGGS.len() + j],
                    "{ctx}: {agg:?} moved across compaction on [{lo},{hi}]"
                );
            }
            // Post-compaction POSITIONS folds renumbered rowids; every
            // shape compacts to the same live order, so the fold still
            // agrees across shapes.
            checksum = checksum.rotate_left(9).wrapping_add(post);
        }
    }

    let stats = svc.shutdown();
    assert!(
        stats.mutations_applied > 0,
        "{ctx}: interleaving applied no mutations"
    );
    assert_eq!(stats.deltas_pending, 0, "{ctx}: acked deltas left pending");
    checksum
}

/// The suite: every seed × every service shape, cross-checked.
#[test]
fn randomized_interleavings_match_naive_recompute_everywhere() {
    for seed in 0..5u64 {
        let mut reference: Option<u64> = None;
        for (mode, shards, readers) in SHAPES {
            let sum = run_interleaving(seed, mode, shards, readers);
            match reference {
                Some(want) => assert_eq!(
                    sum,
                    want,
                    "seed {seed}: answers diverged across service shapes \
                     ({} s{shards} r{readers})",
                    mode.label()
                ),
                None => reference = Some(sum),
            }
        }
    }
}

/// Deleting then re-deleting, updating dead rows, and compacting an
/// already-compact store are all counted-out no-ops with stable answers.
#[test]
fn idempotent_edges_hold() {
    let base = data::sorted(600, DOMAIN);
    let svc = QueryService::start(
        base.clone(),
        ServerConfig {
            shards: 3,
            adaptive: test_config(),
            ..ServerConfig::default()
        },
    );
    let mut model = Model::new(&base);

    assert_eq!(svc.delete(10).expect("live"), 1);
    assert!(model.apply(Mutation::Delete(10)));
    assert_eq!(svc.delete(10).expect("live"), 0, "re-delete must no-op");
    assert!(!model.apply(Mutation::Delete(10)));
    assert_eq!(
        svc.update(10, 99).expect("live"),
        0,
        "update of a dead row must no-op"
    );
    verify(
        &svc,
        &model,
        0,
        DOMAIN - 1,
        AggKind::Sum,
        "idempotent-edges",
    );
    verify(
        &svc,
        &model,
        0,
        DOMAIN - 1,
        AggKind::Positions,
        "idempotent-edges",
    );

    assert_eq!(svc.compact().expect("live"), 1);
    model.compact();
    assert_eq!(svc.compact().expect("live"), 0, "second compact reclaims 0");
    for agg in AGGS {
        verify(&svc, &model, 0, DOMAIN - 1, agg, "idempotent-edges post");
    }
}

/// Updates land at fresh tail rowids: POSITIONS sees the new row at the
/// end of the store, not in place.
#[test]
fn updates_are_out_of_place() {
    let base = data::sorted(100, 1_000);
    let n = base.len();
    let svc = QueryService::start(base.clone(), ServerConfig::default());
    let mut model = Model::new(&base);

    let applied = svc.update(0, 500).expect("live");
    assert_eq!(applied, 1);
    assert!(model.apply(Mutation::Update(0, 500)));
    let fold = verify(&svc, &model, 500, 500, AggKind::Positions, "out-of-place");
    assert!(fold > 0);
    let reply = svc
        .query(RangePredicate::between(500, 500), AggKind::Positions)
        .expect("closed loop");
    let positions = reply
        .answer()
        .expect("no deadline")
        .positions
        .clone()
        .expect("positions carried");
    assert!(
        positions.contains(&(n as u32)),
        "updated value must live at the tail rowid, got {positions:?}"
    );
}

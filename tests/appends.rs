//! Freshness under ingestion: every strategy stays correct while data
//! arrives between (and during) query bursts.

use adaptive_data_skipping::core::RangePredicate;
use adaptive_data_skipping::engine::{execute_reference, AggKind, ColumnSession, Strategy};
use adaptive_data_skipping::workloads::data;

#[test]
fn interleaved_appends_all_strategies_agree() {
    let full = data::almost_sorted(60_000, 60_000, 0.05, 128, 1);
    let initial = 20_000usize;
    let batch = 2_000usize;

    for strategy in Strategy::roster() {
        let mut session = ColumnSession::new(full[..initial].to_vec(), &strategy);
        let mut grown = initial;
        while grown < full.len() {
            // Queries referencing old, new, and straddling ranges.
            for pred in [
                RangePredicate::between(0, 1000),
                RangePredicate::between(grown as i64 - 3000, grown as i64 + 3000),
                RangePredicate::between(grown as i64 / 2, grown as i64 / 2 + 500),
            ] {
                let expected = execute_reference(&full[..grown], pred, AggKind::Count).count;
                assert_eq!(
                    session.count(pred),
                    expected,
                    "{} at {grown} rows, {pred}",
                    strategy.label()
                );
            }
            session.append(&full[grown..grown + batch]);
            grown += batch;
        }
        assert_eq!(session.len(), full.len());
    }
}

#[test]
fn append_only_then_query_storm() {
    // Build empty-ish, append everything in many small batches, then
    // query: exercises partial-zone repair paths in every structure.
    let full = data::uniform(30_000, 50_000, 2);
    for strategy in Strategy::roster() {
        let mut session = ColumnSession::new(full[..1].to_vec(), &strategy);
        let mut grown = 1usize;
        while grown < full.len() {
            let next = (grown + 777).min(full.len());
            session.append(&full[grown..next]);
            grown = next;
        }
        for q in 0..20 {
            let lo = q * 2000;
            let pred = RangePredicate::between(lo, lo + 900);
            let expected = execute_reference(&full, pred, AggKind::Count).count;
            assert_eq!(session.count(pred), expected, "{} q{q}", strategy.label());
        }
    }
}

#[test]
fn appended_values_outside_old_domain() {
    // Domain drift: new values exceed anything the index has seen (a
    // stress for imprints' fixed bins and zonemap extremes).
    let old: Vec<i64> = (0..10_000).collect();
    let drift: Vec<i64> = (1_000_000..1_005_000).collect();
    for strategy in Strategy::roster() {
        let mut session = ColumnSession::new(old.clone(), &strategy);
        session.count(RangePredicate::between(0, 100));
        session.append(&drift);
        let mut combined = old.clone();
        combined.extend_from_slice(&drift);
        for pred in [
            RangePredicate::between(1_000_000, 1_001_000),
            RangePredicate::between(9_000, 1_000_100),
            RangePredicate::at_least(500_000),
        ] {
            let expected = execute_reference(&combined, pred, AggKind::Count).count;
            assert_eq!(session.count(pred), expected, "{} {pred}", strategy.label());
        }
    }
}

#[test]
fn empty_append_is_a_noop() {
    for strategy in Strategy::roster() {
        let mut session = ColumnSession::new((0..1000i64).collect(), &strategy);
        let before = session.count(RangePredicate::all());
        session.append(&[]);
        assert_eq!(
            session.count(RangePredicate::all()),
            before,
            "{}",
            strategy.label()
        );
        assert_eq!(session.len(), 1000);
    }
}

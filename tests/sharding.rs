//! Cross-shard equivalence suite: the sharded execution path must be
//! answer-identical to the unsharded straight-scan reference on every
//! aggregate, data distribution, and shard count — including layouts that
//! stress the partition arithmetic (row counts not divisible by the shard
//! count, shards smaller than one zone, empty tail shards) — and, at one
//! shard, must reproduce the unsharded adaptive path *exactly*, zone
//! snapshot included.

use adaptive_data_skipping::core::adaptive::{AdaptiveConfig, AdaptiveZonemap, ShardedZonemap};
use adaptive_data_skipping::core::RangePredicate;
use adaptive_data_skipping::engine::{
    execute_reference, execute_sharded, execute_with_policy, AggKind, ExecPolicy, QueryAnswer,
};
use adaptive_data_skipping::storage::ShardedColumn;
use adaptive_data_skipping::workloads::{data, queries};

const AGGS: [AggKind; 5] = [
    AggKind::Count,
    AggKind::Sum,
    AggKind::Min,
    AggKind::Max,
    AggKind::Positions,
];

/// Small zones so structural adaptation (build/split/merge/deactivate)
/// happens at test scale.
fn test_config() -> AdaptiveConfig {
    AdaptiveConfig {
        target_zone_rows: 64,
        min_zone_rows: 8,
        max_zone_rows: 512,
        split_after_wasted: 1,
        merge_after_probes: 2,
        deactivate_after_probes: 4,
        maintenance_every: 2,
        revival_base_queries: Some(8),
        ..AdaptiveConfig::default()
    }
}

/// The three distributions the suite sweeps; domain chosen so i64 sums are
/// far below 2^53 and therefore exact in f64 at any association.
fn distributions(n: usize) -> Vec<(&'static str, Vec<i64>)> {
    const DOMAIN: i64 = 10_000;
    vec![
        ("sorted", data::sorted(n, DOMAIN)),
        ("clustered", data::clustered(n, 24, 0.05, DOMAIN, 0xC1)),
        ("uniform", data::uniform(n, DOMAIN, 0xC2)),
    ]
}

/// Answer equality with f64 sums compared by bit pattern: the sharded
/// merge must reassociate nothing.
fn assert_same_answer(got: &QueryAnswer<i64>, want: &QueryAnswer<i64>, ctx: &str) {
    assert_eq!(got.count, want.count, "count diverged: {ctx}");
    assert_eq!(
        got.sum.map(f64::to_bits),
        want.sum.map(f64::to_bits),
        "sum bits diverged: {ctx}"
    );
    assert_eq!(got.min, want.min, "min diverged: {ctx}");
    assert_eq!(got.max, want.max, "max diverged: {ctx}");
    assert_eq!(got.positions, want.positions, "positions diverged: {ctx}");
}

/// Runs `queries` through a fresh sharded column at each shard count and
/// checks every answer against the unsharded straight-scan reference.
fn check_against_reference(
    label: &str,
    rows: &[i64],
    shard_counts: &[usize],
    preds: &[RangePredicate<i64>],
) {
    for &shards in shard_counts {
        for policy in [
            ExecPolicy::sequential(),
            ExecPolicy {
                threads: 4,
                min_rows_per_thread: 1,
            },
        ] {
            let column = ShardedColumn::new(rows.to_vec(), shards);
            let mut zonemap = ShardedZonemap::for_column(&column, test_config());
            for (qi, pred) in preds.iter().enumerate() {
                let agg = AGGS[qi % AGGS.len()];
                let (got, metrics) = execute_sharded(&column, &mut zonemap, *pred, agg, &policy);
                let want = execute_reference(rows, *pred, agg);
                let ctx = format!(
                    "{label} shards={shards} threads={} q{qi} {agg:?}",
                    policy.threads
                );
                assert_same_answer(&got, &want, &ctx);
                assert_eq!(metrics.shards.len(), shards, "lane metrics count: {ctx}");
                assert_eq!(
                    metrics.query.rows_matched, want.count,
                    "metrics rows_matched: {ctx}"
                );
            }
        }
    }
}

fn preds_for(n_queries: usize, seed: u64) -> Vec<RangePredicate<i64>> {
    queries::uniform_ranges(n_queries, 10_000, 0.05, seed)
        .into_iter()
        .map(|q| RangePredicate::between(q.lo, q.hi))
        .collect()
}

#[test]
fn sharded_answers_match_reference_across_distributions() {
    // 10_007 rows: prime, so not divisible by 3 or 8 — the tail shard is
    // shorter than the rest at every swept shard count.
    let preds = preds_for(25, 0xE401);
    for (label, rows) in distributions(10_007) {
        check_against_reference(label, &rows, &[1, 3, 8], &preds);
    }
}

#[test]
fn shards_smaller_than_one_zone_stay_exact() {
    // 100 rows over 8 shards: 13 rows per shard, far below the 64-row
    // target zone, so every lane runs on fractional-zone metadata.
    let preds = preds_for(20, 0xE402);
    for (label, rows) in distributions(100) {
        check_against_reference(label, &rows, &[3, 8], &preds);
    }
}

#[test]
fn empty_tail_shards_answer_exactly() {
    // 49 rows over 8 shards: ceil-chunking gives 7-row shards, so the
    // eighth shard holds zero rows; 5 rows over 8 shards leaves three
    // trailing shards empty. Both layouts must answer exactly.
    let preds = preds_for(15, 0xE403);
    for n in [49usize, 5] {
        for (label, rows) in distributions(n) {
            check_against_reference(&format!("{label} n={n}"), &rows, &[8], &preds);
        }
    }
}

#[test]
fn appends_into_the_tail_shard_stay_exact() {
    let preds = preds_for(30, 0xE404);
    for (label, seed_rows) in distributions(5_003) {
        for shards in [1usize, 3, 8] {
            let mut rows = seed_rows.clone();
            let mut column = ShardedColumn::new(rows.clone(), shards);
            let mut zonemap = ShardedZonemap::for_column(&column, test_config());
            let policy = ExecPolicy::sequential();
            for (qi, pred) in preds.iter().enumerate() {
                // Interleave an append every few queries; the batch routes
                // to the tail shard and its lane alone.
                if qi % 5 == 4 {
                    let batch: Vec<i64> = (0..137).map(|i| (i * 61) % 10_000).collect();
                    rows.extend_from_slice(&batch);
                    column = column.append(&batch);
                    let tail = column.num_shards() - 1;
                    zonemap.on_append_tail(&batch, column.shard(tail).as_slice());
                }
                let agg = AGGS[qi % AGGS.len()];
                let (got, _) = execute_sharded(&column, &mut zonemap, *pred, agg, &policy);
                let want = execute_reference(&rows, *pred, agg);
                assert_same_answer(
                    &got,
                    &want,
                    &format!("{label} shards={shards} q{qi} {agg:?} after appends"),
                );
            }
            assert_eq!(column.len(), rows.len());
        }
    }
}

/// The adaptation-equivalence guard: with one shard, the sharded path is
/// not merely answer-equal to the unsharded adaptive executor — it drives
/// the zonemap through the *identical* state trajectory. Any divergence in
/// zone boundaries, labels, or skip-rate stats fails here, pinning the
/// refactor to the pre-sharding behaviour.
#[test]
fn single_shard_path_reproduces_the_unsharded_zonemap_exactly() {
    let workloads: [(&str, Vec<i64>); 2] = [
        // Clustered: heavy build/split/tighten traffic.
        ("clustered", data::clustered(8_009, 24, 0.05, 10_000, 0xC1)),
        // Adversarial uniform: zones barely help, driving merge/deactivate
        // and revival — the maintenance-heavy trajectory.
        ("uniform", data::uniform(8_009, 10_000, 0xC2)),
    ];
    for (label, rows) in workloads {
        for policy in [
            ExecPolicy::sequential(),
            ExecPolicy {
                threads: 4,
                min_rows_per_thread: 1,
            },
        ] {
            let column = ShardedColumn::new(rows.clone(), 1);
            let mut sharded_zm = ShardedZonemap::for_column(&column, test_config());
            let mut plain_zm = AdaptiveZonemap::new(rows.len(), test_config());
            for (qi, pred) in preds_for(60, 0xE405).iter().enumerate() {
                let agg = AGGS[qi % AGGS.len()];
                let (sharded_ans, _) =
                    execute_sharded(&column, &mut sharded_zm, *pred, agg, &policy);
                let (plain_ans, _) = execute_with_policy(&rows, &mut plain_zm, *pred, agg, &policy);
                let ctx = format!("{label} threads={} q{qi} {agg:?}", policy.threads);
                assert_same_answer(&sharded_ans, &plain_ans, &ctx);
                assert_eq!(
                    sharded_zm.zone_snapshot(),
                    plain_zm.zone_snapshot(),
                    "zone trajectory diverged: {ctx}"
                );
            }
        }
    }
}

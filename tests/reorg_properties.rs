//! Property suites for the zone-local reorganization layer.
//!
//! The layer's contract is purely physical: promoting a hot zone to the
//! sorted/cracked layout (or demoting it again) changes how the executor
//! finds qualifying rows, never which rows qualify or what any aggregate
//! over them returns — including the exact bit pattern of f64 SUMs, which
//! the positional path preserves by adding qualifying values in the same
//! ascending row order as the flat scan. Each test replays randomised
//! workloads across many deterministic seeds and checks the reorg-enabled
//! path against the flat path and the straight-scan reference.

use adaptive_data_skipping::core::adaptive::{AdaptiveConfig, AdaptiveZonemap, ShardedZonemap};
use adaptive_data_skipping::core::{RangePredicate, SkippingIndex};
use adaptive_data_skipping::engine::{
    execute_reference, execute_sharded, execute_with_policy, AggKind, ExecPolicy, QueryAnswer,
};
use adaptive_data_skipping::storage::{DataValue, ShardedColumn};
use ads_rng::StdRng;
use std::cmp::Ordering;

const CASES: u64 = 48;

const ALL_AGGS: [AggKind; 5] = [
    AggKind::Count,
    AggKind::Sum,
    AggKind::Min,
    AggKind::Max,
    AggKind::Positions,
];

/// Small zones so promotion/demotion churn happens at test scale. Splits
/// and merges stay enabled: structural adaptation must compose with
/// layout adaptation without changing answers.
fn base_config() -> AdaptiveConfig {
    AdaptiveConfig {
        target_zone_rows: 64,
        min_zone_rows: 8,
        max_zone_rows: 512,
        maintenance_every: 1,
        ..AdaptiveConfig::default()
    }
}

fn reorg_config() -> AdaptiveConfig {
    AdaptiveConfig {
        enable_reorg: true,
        reorg_after_scans: 1,
        reorg_demote_idle: 3,
        // Gate off: equivalence must hold under maximum layout churn,
        // including promotions a production policy would decline.
        reorg_hot_factor: 0.0,
        ..base_config()
    }
}

/// Lockstep variant for the bit-identity property: structural churn off,
/// so the flat and reorg maps keep identical zone partitions and the f64
/// SUM fold grouping is comparable group by group.
fn lockstep_config(reorg: bool) -> AdaptiveConfig {
    AdaptiveConfig {
        enable_split: false,
        enable_merge: false,
        enable_reorg: reorg,
        reorg_after_scans: 1,
        reorg_demote_idle: 3,
        reorg_hot_factor: 0.0,
        ..base_config()
    }
}

/// totalOrder equality — the only equality under which NaN extrema
/// compare equal to themselves.
fn same<T: DataValue>(a: T, b: T) -> bool {
    a.total_cmp(&b) == Ordering::Equal
}

/// Field-wise answer equality that is NaN-safe and bit-exact on sums.
fn assert_answers_identical<T: DataValue>(a: &QueryAnswer<T>, b: &QueryAnswer<T>, ctx: &str) {
    assert_eq!(a.count, b.count, "count {ctx}");
    match (a.sum, b.sum) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            assert_eq!(x.to_bits(), y.to_bits(), "sum bits {ctx}: {x} vs {y}")
        }
        (x, y) => panic!("sum presence {ctx}: {x:?} vs {y:?}"),
    }
    for (got, want, which) in [(a.min, b.min, "min"), (a.max, b.max, "max")] {
        match (got, want) {
            (None, None) => {}
            (Some(x), Some(y)) => assert!(same(x, y), "{which} {ctx}"),
            _ => panic!("{which} presence {ctx}"),
        }
    }
    assert_eq!(a.positions, b.positions, "positions {ctx}");
}

fn gen_i64(rng: &mut StdRng, max_len: usize) -> Vec<i64> {
    let n = rng.gen_range(64..max_len);
    (0..n).map(|_| rng.gen_range(-1000i64..1000)).collect()
}

/// Hotspot-heavy predicate stream: most queries hit a narrow band so
/// zones actually get promoted, with occasional off-band queries so some
/// reorganized zones idle toward demotion.
fn gen_hot_preds(rng: &mut StdRng, n: usize) -> Vec<RangePredicate<i64>> {
    let center = rng.gen_range(-800i64..800);
    (0..n)
        .map(|_| {
            if rng.gen_range(0..5usize) == 0 {
                let lo = rng.gen_range(-1200i64..1200);
                RangePredicate::between(lo, lo + rng.gen_range(0i64..400))
            } else {
                let lo = center + rng.gen_range(-60i64..60);
                RangePredicate::between(lo, lo + rng.gen_range(10i64..120))
            }
        })
        .collect()
}

#[test]
fn reorg_matches_flat_and_reference_on_i64_workloads() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xE19_0001 ^ case);
        let data = gen_i64(&mut rng, 4000);
        let preds = gen_hot_preds(&mut rng, 24);
        for threads in [1usize, 8] {
            let policy = ExecPolicy {
                threads,
                min_rows_per_thread: 1,
            };
            let mut flat = AdaptiveZonemap::new(data.len(), base_config());
            let mut reorg = AdaptiveZonemap::new(data.len(), reorg_config());
            for (qi, pred) in preds.iter().enumerate() {
                let agg = ALL_AGGS[qi % ALL_AGGS.len()];
                let (f, _) = execute_with_policy(&data, &mut flat, *pred, agg, &policy);
                let (r, _) = execute_with_policy(&data, &mut reorg, *pred, agg, &policy);
                let want = execute_reference(&data, *pred, agg);
                let ctx = format!("case {case} t={threads} q{qi} {agg:?}");
                assert_answers_identical(&r, &f, &ctx);
                assert_answers_identical(&r, &want, &ctx);
            }
            // The workload was hot enough to exercise the layer at all.
            if threads == 1 && case % 8 == 0 {
                assert!(
                    reorg.reorg_stats().zones_promoted > 0,
                    "case {case}: hotspot workload never promoted a zone"
                );
            }
        }
    }
}

/// Edge values every float path must agree on: NaNs of both signs, both
/// zeros, both infinities, plus ordinary magnitudes whose sums are
/// sensitive to addition order.
fn gen_f64_edgy(rng: &mut StdRng, len: usize) -> Vec<f64> {
    const EDGES: [f64; 6] = [f64::NAN, 0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY, 1.0];
    (0..len)
        .map(|_| {
            if rng.gen_range(0..4usize) == 0 {
                let e = EDGES[rng.gen_range(0..EDGES.len())];
                if rng.gen_range(0..2usize) == 0 {
                    -e
                } else {
                    e
                }
            } else {
                rng.gen_range(-1_000_000i64..1_000_000) as f64 / 64.0
            }
        })
        .collect()
}

#[test]
fn reorg_f64_answers_bit_identical_to_flat_including_nan_and_signed_zero() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xE19_0002 ^ case);
        let n = rng.gen_range(200..2500usize);
        let data = gen_f64_edgy(&mut rng, n);
        for threads in [1usize, 8] {
            let policy = ExecPolicy {
                threads,
                min_rows_per_thread: 1,
            };
            let mut flat = AdaptiveZonemap::new(data.len(), lockstep_config(false));
            let mut reorg = AdaptiveZonemap::new(data.len(), lockstep_config(true));
            for qi in 0..15 {
                // Bounds drawn from the edgy distribution too (ordered
                // under totalOrder, as `between` requires): NaN and
                // infinite bounds are valid equivalence cases.
                let b = gen_f64_edgy(&mut rng, 2);
                let (lo, hi) = if b[0].total_cmp(&b[1]) == Ordering::Greater {
                    (b[1], b[0])
                } else {
                    (b[0], b[1])
                };
                let pred = RangePredicate::between(lo, hi);
                let agg = ALL_AGGS[qi % ALL_AGGS.len()];
                let (f, _) = execute_with_policy(&data, &mut flat, pred, agg, &policy);
                let (r, _) = execute_with_policy(&data, &mut reorg, pred, agg, &policy);
                assert_answers_identical(
                    &r,
                    &f,
                    &format!("f64 case {case} t={threads} q{qi} {agg:?}"),
                );
            }
        }
    }
}

#[test]
fn reorg_sharded_answers_match_flat_at_any_shard_count() {
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0xE19_0003 ^ case);
        let data = gen_i64(&mut rng, 5000);
        let preds = gen_hot_preds(&mut rng, 16);
        for shards in [1usize, 8] {
            for threads in [1usize, 8] {
                let policy = ExecPolicy {
                    threads,
                    min_rows_per_thread: 1,
                };
                let column = ShardedColumn::new(data.clone(), shards);
                let mut flat = ShardedZonemap::for_column(&column, base_config());
                let mut reorg = ShardedZonemap::for_column(&column, reorg_config());
                for (qi, pred) in preds.iter().enumerate() {
                    let agg = ALL_AGGS[qi % ALL_AGGS.len()];
                    let (f, _) = execute_sharded(&column, &mut flat, *pred, agg, &policy);
                    let (r, _) = execute_sharded(&column, &mut reorg, *pred, agg, &policy);
                    let want = execute_reference(&data, *pred, agg);
                    let ctx = format!("case {case} s={shards} t={threads} q{qi} {agg:?}");
                    assert_answers_identical(&r, &f, &ctx);
                    assert_answers_identical(&r, &want, &ctx);
                }
            }
        }
    }
}

/// Structural soundness under the full lifecycle: promote zones with a
/// hotspot, append rows (which must land flat and never disturb a
/// reorganized zone's payload), move the hotspot so old zones idle into
/// demotion — and at every step `zone_snapshot()` stays a contiguous
/// partition whose "reorg" labels agree with the layout, while answers
/// stay exact.
#[test]
fn promote_append_demote_interleavings_keep_zone_snapshot_sound() {
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0xE19_0004 ^ case);
        let mut data = gen_i64(&mut rng, 3000);
        let mut zm = AdaptiveZonemap::new(data.len(), reorg_config());
        let mut center = rng.gen_range(-800i64..800);
        let steps = rng.gen_range(20..60usize);
        for step in 0..steps {
            match rng.gen_range(0..8usize) {
                // Append: new rows open flat zones at the tail.
                0 => {
                    let batch: Vec<i64> = (0..rng.gen_range(1..200usize))
                        .map(|_| rng.gen_range(-1000i64..1000))
                        .collect();
                    let old = data.len();
                    data.extend_from_slice(&batch);
                    zm.on_append(&data[old..], &data);
                }
                // Hotspot shift: previously hot zones start idling.
                1 => center = rng.gen_range(-800i64..800),
                // Query at the current hotspot.
                _ => {
                    let lo = center + rng.gen_range(-60i64..60);
                    let pred = RangePredicate::between(lo, lo + rng.gen_range(10i64..120));
                    let agg = ALL_AGGS[step % ALL_AGGS.len()];
                    let (got, _) =
                        execute_with_policy(&data, &mut zm, pred, agg, &ExecPolicy::sequential());
                    let want = execute_reference(&data, pred, agg);
                    assert_answers_identical(
                        &got,
                        &want,
                        &format!("case {case} step {step} {agg:?}"),
                    );
                }
            }
            // The snapshot is a contiguous partition of [0, len) and its
            // layout lane mirrors the zones' actual layouts.
            let snap = zm.zone_snapshot();
            let mut at = 0usize;
            let mut reorg_labels = 0usize;
            for (range, label, _) in &snap {
                assert_eq!(range.start, at, "case {case} step {step}: gap in snapshot");
                assert!(range.end > range.start);
                at = range.end;
                if *label == "reorg" {
                    reorg_labels += 1;
                }
            }
            assert_eq!(at, data.len(), "case {case} step {step}: snapshot short");
            assert_eq!(
                reorg_labels,
                zm.zones_reorganized(),
                "case {case} step {step}: layout lane out of sync"
            );
        }
        // The lifecycle actually ran: hotspot workloads promote, and over
        // enough steps with shifting hotspots some demotions happen too.
        let stats = zm.reorg_stats();
        if case == 0 {
            assert!(stats.zones_promoted > 0, "lifecycle never promoted");
        }
    }
}

/// The relative-hotness gate: a uniform workload over uniform data scans
/// every zone equally often, so under the default `reorg_hot_factor` no
/// zone ever stands out and promotion correctly never triggers — the
/// policy reorganizes hotspots, not maps that are merely warm all over.
#[test]
fn uniform_workload_never_promotes_under_default_hot_factor() {
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0xE19_0005 ^ case);
        let data = gen_i64(&mut rng, 4000);
        let mut zm = AdaptiveZonemap::new(
            data.len(),
            AdaptiveConfig {
                enable_reorg: true,
                reorg_after_scans: 1,
                ..base_config()
            },
        );
        for qi in 0..40 {
            let lo = rng.gen_range(-1200i64..1200);
            let pred = RangePredicate::between(lo, lo + rng.gen_range(50i64..400));
            let agg = ALL_AGGS[qi % ALL_AGGS.len()];
            let (got, _) =
                execute_with_policy(&data, &mut zm, pred, agg, &ExecPolicy::sequential());
            assert_answers_identical(
                &got,
                &execute_reference(&data, pred, agg),
                &format!("case {case} q{qi} {agg:?}"),
            );
        }
        assert_eq!(
            zm.reorg_stats().zones_promoted,
            0,
            "case {case}: uniform workload must not promote"
        );
    }
}

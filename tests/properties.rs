//! Property-style tests over the framework's core invariants.
//!
//! Each test replays the same randomised scenario across many
//! deterministic seeds (a lightweight substitute for an external
//! property-testing framework): random data, random predicate sequences,
//! every index structure, checked against a straight-scan reference.

use adaptive_data_skipping::baselines::{ColumnImprints, CrackerColumn, SortedOracle};
use adaptive_data_skipping::core::adaptive::{AdaptiveConfig, AdaptiveZonemap};
use adaptive_data_skipping::core::{
    RangeObservation, RangePredicate, ScanObservation, SkippingIndex, StaticZonemap,
};
use adaptive_data_skipping::engine::{
    execute, execute_reference, execute_with_policy, AggKind, ExecPolicy, Strategy,
};
use adaptive_data_skipping::storage::{scan, RangeSet};
use ads_rng::StdRng;

/// Cases per property — the budget an external framework would default to.
const CASES: u64 = 64;

/// Small adaptive config so structural churn happens at test scale.
fn test_config() -> AdaptiveConfig {
    AdaptiveConfig {
        target_zone_rows: 64,
        min_zone_rows: 8,
        max_zone_rows: 512,
        split_after_wasted: 1,
        merge_after_probes: 2,
        deactivate_after_probes: 4,
        maintenance_every: 2,
        revival_base_queries: Some(8),
        ..AdaptiveConfig::default()
    }
}

fn gen_data(rng: &mut StdRng, max_len: usize) -> Vec<i64> {
    let n = rng.gen_range(0..max_len);
    (0..n).map(|_| rng.gen_range(-1000i64..1000)).collect()
}

fn gen_pred(rng: &mut StdRng) -> RangePredicate<i64> {
    let lo = rng.gen_range(-1200i64..1200);
    let w = rng.gen_range(0i64..500);
    RangePredicate::between(lo, lo + w)
}

fn gen_preds(rng: &mut StdRng, lo: usize, hi: usize) -> Vec<RangePredicate<i64>> {
    let n = rng.gen_range(lo..hi);
    (0..n).map(|_| gen_pred(rng)).collect()
}

/// Drives the prune/scan/observe loop once and checks soundness: every
/// qualifying row is covered by must_scan or full_match, and full_match
/// ranges contain only qualifying rows.
fn check_soundness(index: &mut dyn SkippingIndex<i64>, data: &[i64], pred: RangePredicate<i64>) {
    let out = index.prune(&pred);
    let target: Vec<i64> = match index.view() {
        Some(v) => v.to_vec(),
        None => data.to_vec(),
    };
    for (i, &v) in target.iter().enumerate() {
        if pred.matches(v) {
            assert!(
                out.must_scan.contains(i) || out.full_match.contains(i),
                "row {i} (value {v}) lost under {}",
                index.name()
            );
        }
    }
    for r in out.full_match.ranges() {
        for (i, &v) in target.iter().enumerate().take(r.end).skip(r.start) {
            assert!(
                pred.matches(v),
                "row {i} wrongly full-matched under {}",
                index.name()
            );
        }
    }
    // Feed honest observations so adaptive structures keep evolving.
    let mut ranges = Vec::new();
    for unit in out.units() {
        let (q, min, max) =
            scan::count_in_range_with_minmax(&target[unit.start..unit.end], pred.lo, pred.hi);
        ranges.push(RangeObservation::new(*unit, q, min, max));
    }
    index.observe(&ScanObservation {
        predicate: pred,
        ranges,
    });
}

#[test]
fn prune_soundness_all_indexes() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5001 ^ case);
        let data = gen_data(&mut rng, 2000);
        let preds = gen_preds(&mut rng, 1, 12);
        let mut indexes: Vec<Box<dyn SkippingIndex<i64>>> = vec![
            Box::new(StaticZonemap::build(&data, 37)),
            Box::new(AdaptiveZonemap::new(data.len(), test_config())),
            Box::new(ColumnImprints::build(&data, 8, 16)),
            Box::new(CrackerColumn::build(&data)),
            Box::new(SortedOracle::build(&data)),
        ];
        for pred in &preds {
            for index in &mut indexes {
                check_soundness(index.as_mut(), &data, *pred);
            }
        }
    }
}

#[test]
fn answers_match_reference_for_random_workloads() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5002 ^ case);
        let data = gen_data(&mut rng, 2000);
        let preds = gen_preds(&mut rng, 1, 10);
        for strategy in Strategy::roster() {
            let mut index = strategy.build_index(&data);
            for pred in &preds {
                let (got, _) = execute(&data, index.as_mut(), *pred, AggKind::Count);
                let want = execute_reference(&data, *pred, AggKind::Count);
                assert_eq!(got.count, want.count, "case {case}: {}", strategy.label());
            }
        }
    }
}

#[test]
fn positions_match_reference() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5003 ^ case);
        let data = gen_data(&mut rng, 2000);
        let pred = gen_pred(&mut rng);
        for strategy in Strategy::roster() {
            let mut index = strategy.build_index(&data);
            // Run twice: once to let adaptive structures reorganise, once
            // to answer from the reorganised state.
            let _ = execute(&data, index.as_mut(), pred, AggKind::Positions);
            let (got, _) = execute(&data, index.as_mut(), pred, AggKind::Positions);
            let want = execute_reference(&data, pred, AggKind::Positions);
            assert_eq!(
                got.positions,
                want.positions,
                "case {case}: {}",
                strategy.label()
            );
        }
    }
}

#[test]
fn parallel_execution_is_equivalent_to_sequential() {
    // The tentpole guarantee: thread count changes neither answers nor
    // adaptation. Replaying the same query sequence under every policy
    // must produce identical QueryAnswers for every aggregate kind AND
    // leave an adaptive zonemap in an identical structural state.
    const AGGS: [AggKind; 5] = [
        AggKind::Count,
        AggKind::Sum,
        AggKind::Min,
        AggKind::Max,
        AggKind::Positions,
    ];
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0x5009 ^ case);
        let n = rng.gen_range(500..4000usize);
        let data: Vec<i64> = (0..n).map(|_| rng.gen_range(-1000i64..1000)).collect();
        let preds = gen_preds(&mut rng, 4, 10);
        for threads in [2usize, 3, 8] {
            // An eager policy so parallelism actually engages at this scale.
            let policy = ExecPolicy {
                threads,
                min_rows_per_thread: 1,
            };
            for strategy in Strategy::roster() {
                let mut seq_idx = strategy.build_index(&data);
                let mut par_idx = strategy.build_index(&data);
                for (qi, pred) in preds.iter().enumerate() {
                    let agg = AGGS[qi % AGGS.len()];
                    let (seq, _) = execute_with_policy(
                        &data,
                        seq_idx.as_mut(),
                        *pred,
                        agg,
                        &ExecPolicy::sequential(),
                    );
                    let (par, _) =
                        execute_with_policy(&data, par_idx.as_mut(), *pred, agg, &policy);
                    assert_eq!(
                        seq,
                        par,
                        "case {case} t={threads} q{qi} {agg:?}: {}",
                        strategy.label()
                    );
                }
            }
            // Same sequence against adaptive zonemaps directly: the
            // post-workload zone partition must be identical too.
            let mut seq_zm = AdaptiveZonemap::new(data.len(), test_config());
            let mut par_zm = AdaptiveZonemap::new(data.len(), test_config());
            for (qi, pred) in preds.iter().enumerate() {
                let agg = AGGS[qi % AGGS.len()];
                let _ =
                    execute_with_policy(&data, &mut seq_zm, *pred, agg, &ExecPolicy::sequential());
                let _ = execute_with_policy(&data, &mut par_zm, *pred, agg, &policy);
            }
            assert_eq!(
                seq_zm.zone_snapshot(),
                par_zm.zone_snapshot(),
                "case {case} t={threads}: adaptation diverged"
            );
        }
    }
}

#[test]
fn adaptive_zone_partition_survives_any_query_sequence() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5004 ^ case);
        let len = rng.gen_range(0..5000usize);
        let preds = gen_preds(&mut rng, 1, 30);
        let data: Vec<i64> = (0..len as i64).map(|i| (i * 37) % 997 - 500).collect();
        let mut zm = AdaptiveZonemap::new(len, test_config());
        for pred in preds {
            check_soundness(&mut zm, &data, pred);
            zm.assert_invariants();
        }
    }
}

#[test]
fn adaptive_soundness_under_interleaved_appends() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5005 ^ case);
        let mut data = gen_data(&mut rng, 2000);
        let pred = gen_pred(&mut rng);
        let n_batches = rng.gen_range(0..6usize);
        let mut zm = AdaptiveZonemap::new(data.len(), test_config());
        check_soundness(&mut zm, &data, pred);
        for _ in 0..n_batches {
            let batch = {
                let b = rng.gen_range(1..100usize);
                (0..b)
                    .map(|_| rng.gen_range(-1000i64..1000))
                    .collect::<Vec<_>>()
            };
            let old = data.len();
            data.extend_from_slice(&batch);
            zm.on_append(&data[old..], &data);
            zm.assert_invariants();
            check_soundness(&mut zm, &data, pred);
            let (got, _) = execute(&data, &mut zm, pred, AggKind::Count);
            let want = execute_reference(&data, pred, AggKind::Count);
            assert_eq!(got.count, want.count, "case {case}");
        }
    }
}

#[test]
fn cracking_preserves_multiset() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5006 ^ case);
        let data = gen_data(&mut rng, 2000);
        let preds = gen_preds(&mut rng, 1, 10);
        let mut cc = CrackerColumn::build(&data);
        for pred in &preds {
            let _ = cc.prune(pred);
        }
        let mut original = data.clone();
        let mut cracked = cc.view().expect("cracker exposes its view").to_vec();
        original.sort_unstable();
        cracked.sort_unstable();
        assert_eq!(original, cracked, "case {case}");
    }
}

#[test]
fn rangeset_complement_partitions() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5007 ^ case);
        let n = rng.gen_range(500..600usize);
        let n_spans = rng.gen_range(0..20usize);
        let mut spans: Vec<(usize, usize)> = (0..n_spans)
            .map(|_| (rng.gen_range(0..500usize), rng.gen_range(0..50usize)))
            .collect();
        spans.sort_unstable();
        let mut rs = RangeSet::new();
        for (start, w) in spans {
            let end = (start + w).min(n);
            if start < end {
                // push requires increasing starts; clamp overlaps are fine.
                if rs.ranges().last().is_none_or(|r| start >= r.start) {
                    rs.push_span(start, end);
                }
            }
        }
        let comp = rs.complement(n);
        assert_eq!(rs.covered_rows() + comp.covered_rows(), n, "case {case}");
        for row in 0..n {
            assert!(
                rs.contains(row) != comp.contains(row),
                "case {case} row {row}"
            );
        }
    }
}

#[test]
fn static_zonemap_metadata_always_exact() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5008 ^ case);
        let data = gen_data(&mut rng, 2000);
        let zone_rows = rng.gen_range(1..200usize);
        let mut zm = StaticZonemap::build(&data, zone_rows);
        // Metadata truth implies soundness for every predicate; spot-check
        // with predicates derived from the data itself.
        if let Some((min, max)) = scan::min_max(&data) {
            for pred in [
                RangePredicate::point(min),
                RangePredicate::point(max),
                RangePredicate::between(min, max),
            ] {
                check_soundness(&mut zm, &data, pred);
            }
        }
    }
}

//! Property-style tests over the framework's core invariants.
//!
//! Each test replays the same randomised scenario across many
//! deterministic seeds (a lightweight substitute for an external
//! property-testing framework): random data, random predicate sequences,
//! every index structure, checked against a straight-scan reference.

use adaptive_data_skipping::baselines::{ColumnImprints, CrackerColumn, SortedOracle};
use adaptive_data_skipping::core::adaptive::ShardedZonemap;
use adaptive_data_skipping::core::adaptive::{AdaptiveConfig, AdaptiveZonemap};
use adaptive_data_skipping::core::{
    RangeObservation, RangePredicate, ScanObservation, SkippingIndex, StaticZonemap,
};
use adaptive_data_skipping::engine::execute_sharded;
use adaptive_data_skipping::engine::{
    execute, execute_reference, execute_with_policy, AggKind, ExecPolicy, Strategy,
};
use adaptive_data_skipping::storage::{scan, Bitmap, DataValue, RangeSet, ShardedColumn};
use ads_rng::StdRng;
use std::cmp::Ordering;

/// Cases per property — the budget an external framework would default to.
const CASES: u64 = 64;

/// Small adaptive config so structural churn happens at test scale.
fn test_config() -> AdaptiveConfig {
    AdaptiveConfig {
        target_zone_rows: 64,
        min_zone_rows: 8,
        max_zone_rows: 512,
        split_after_wasted: 1,
        merge_after_probes: 2,
        deactivate_after_probes: 4,
        maintenance_every: 2,
        revival_base_queries: Some(8),
        ..AdaptiveConfig::default()
    }
}

fn gen_data(rng: &mut StdRng, max_len: usize) -> Vec<i64> {
    let n = rng.gen_range(0..max_len);
    (0..n).map(|_| rng.gen_range(-1000i64..1000)).collect()
}

fn gen_pred(rng: &mut StdRng) -> RangePredicate<i64> {
    let lo = rng.gen_range(-1200i64..1200);
    let w = rng.gen_range(0i64..500);
    RangePredicate::between(lo, lo + w)
}

fn gen_preds(rng: &mut StdRng, lo: usize, hi: usize) -> Vec<RangePredicate<i64>> {
    let n = rng.gen_range(lo..hi);
    (0..n).map(|_| gen_pred(rng)).collect()
}

/// Drives the prune/scan/observe loop once and checks soundness: every
/// qualifying row is covered by must_scan or full_match, and full_match
/// ranges contain only qualifying rows.
fn check_soundness(index: &mut dyn SkippingIndex<i64>, data: &[i64], pred: RangePredicate<i64>) {
    let out = index.prune(&pred);
    let target: Vec<i64> = match index.view() {
        Some(v) => v.to_vec(),
        None => data.to_vec(),
    };
    for (i, &v) in target.iter().enumerate() {
        if pred.matches(v) {
            assert!(
                out.must_scan.contains(i) || out.full_match.contains(i),
                "row {i} (value {v}) lost under {}",
                index.name()
            );
        }
    }
    for r in out.full_match.ranges() {
        for (i, &v) in target.iter().enumerate().take(r.end).skip(r.start) {
            assert!(
                pred.matches(v),
                "row {i} wrongly full-matched under {}",
                index.name()
            );
        }
    }
    // Feed honest observations so adaptive structures keep evolving.
    let mut ranges = Vec::new();
    for unit in out.units() {
        let (q, min, max) =
            scan::count_in_range_with_minmax(&target[unit.start..unit.end], pred.lo, pred.hi);
        ranges.push(RangeObservation::new(*unit, q, min, max));
    }
    index.observe(&ScanObservation {
        predicate: pred,
        ranges,
    });
}

#[test]
fn prune_soundness_all_indexes() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5001 ^ case);
        let data = gen_data(&mut rng, 2000);
        let preds = gen_preds(&mut rng, 1, 12);
        let mut indexes: Vec<Box<dyn SkippingIndex<i64>>> = vec![
            Box::new(StaticZonemap::build(&data, 37)),
            Box::new(AdaptiveZonemap::new(data.len(), test_config())),
            Box::new(ColumnImprints::build(&data, 8, 16)),
            Box::new(CrackerColumn::build(&data)),
            Box::new(SortedOracle::build(&data)),
        ];
        for pred in &preds {
            for index in &mut indexes {
                check_soundness(index.as_mut(), &data, *pred);
            }
        }
    }
}

#[test]
fn answers_match_reference_for_random_workloads() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5002 ^ case);
        let data = gen_data(&mut rng, 2000);
        let preds = gen_preds(&mut rng, 1, 10);
        for strategy in Strategy::roster() {
            let mut index = strategy.build_index(&data);
            for pred in &preds {
                let (got, _) = execute(&data, index.as_mut(), *pred, AggKind::Count);
                let want = execute_reference(&data, *pred, AggKind::Count);
                assert_eq!(got.count, want.count, "case {case}: {}", strategy.label());
            }
        }
    }
}

#[test]
fn positions_match_reference() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5003 ^ case);
        let data = gen_data(&mut rng, 2000);
        let pred = gen_pred(&mut rng);
        for strategy in Strategy::roster() {
            let mut index = strategy.build_index(&data);
            // Run twice: once to let adaptive structures reorganise, once
            // to answer from the reorganised state.
            let _ = execute(&data, index.as_mut(), pred, AggKind::Positions);
            let (got, _) = execute(&data, index.as_mut(), pred, AggKind::Positions);
            let want = execute_reference(&data, pred, AggKind::Positions);
            assert_eq!(
                got.positions,
                want.positions,
                "case {case}: {}",
                strategy.label()
            );
        }
    }
}

#[test]
fn parallel_execution_is_equivalent_to_sequential() {
    // The tentpole guarantee: thread count changes neither answers nor
    // adaptation. Replaying the same query sequence under every policy
    // must produce identical QueryAnswers for every aggregate kind AND
    // leave an adaptive zonemap in an identical structural state.
    const AGGS: [AggKind; 5] = [
        AggKind::Count,
        AggKind::Sum,
        AggKind::Min,
        AggKind::Max,
        AggKind::Positions,
    ];
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0x5009 ^ case);
        let n = rng.gen_range(500..4000usize);
        let data: Vec<i64> = (0..n).map(|_| rng.gen_range(-1000i64..1000)).collect();
        let preds = gen_preds(&mut rng, 4, 10);
        for threads in [2usize, 3, 8] {
            // An eager policy so parallelism actually engages at this scale.
            let policy = ExecPolicy {
                threads,
                min_rows_per_thread: 1,
            };
            for strategy in Strategy::roster() {
                let mut seq_idx = strategy.build_index(&data);
                let mut par_idx = strategy.build_index(&data);
                for (qi, pred) in preds.iter().enumerate() {
                    let agg = AGGS[qi % AGGS.len()];
                    let (seq, _) = execute_with_policy(
                        &data,
                        seq_idx.as_mut(),
                        *pred,
                        agg,
                        &ExecPolicy::sequential(),
                    );
                    let (par, _) =
                        execute_with_policy(&data, par_idx.as_mut(), *pred, agg, &policy);
                    assert_eq!(
                        seq,
                        par,
                        "case {case} t={threads} q{qi} {agg:?}: {}",
                        strategy.label()
                    );
                }
            }
            // Same sequence against adaptive zonemaps directly: the
            // post-workload zone partition must be identical too.
            let mut seq_zm = AdaptiveZonemap::new(data.len(), test_config());
            let mut par_zm = AdaptiveZonemap::new(data.len(), test_config());
            for (qi, pred) in preds.iter().enumerate() {
                let agg = AGGS[qi % AGGS.len()];
                let _ =
                    execute_with_policy(&data, &mut seq_zm, *pred, agg, &ExecPolicy::sequential());
                let _ = execute_with_policy(&data, &mut par_zm, *pred, agg, &policy);
            }
            assert_eq!(
                seq_zm.zone_snapshot(),
                par_zm.zone_snapshot(),
                "case {case} t={threads}: adaptation diverged"
            );
        }
    }
}

#[test]
fn sharded_execution_matches_reference_on_random_workloads() {
    // Random data lengths (including lengths below the shard count and
    // zero), random predicates, every aggregate, shard counts {1, 3, 8},
    // sequential and parallel policies: the sharded path must agree with
    // the straight-scan reference everywhere, f64 sums bit-for-bit.
    const AGGS: [AggKind; 5] = [
        AggKind::Count,
        AggKind::Sum,
        AggKind::Min,
        AggKind::Max,
        AggKind::Positions,
    ];
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5AAD ^ case);
        let data = gen_data(&mut rng, 3000);
        let preds = gen_preds(&mut rng, 2, 10);
        for shards in [1usize, 3, 8] {
            let policy = ExecPolicy {
                threads: rng.gen_range(1..5usize),
                min_rows_per_thread: 1,
            };
            let column = ShardedColumn::new(data.clone(), shards);
            let mut zonemap = ShardedZonemap::for_column(&column, test_config());
            for (qi, pred) in preds.iter().enumerate() {
                let agg = AGGS[qi % AGGS.len()];
                let (got, _) = execute_sharded(&column, &mut zonemap, *pred, agg, &policy);
                let want = execute_reference(&data, *pred, agg);
                let ctx = format!("case {case} shards={shards} q{qi} {agg:?}");
                assert_eq!(got.count, want.count, "count {ctx}");
                assert_eq!(
                    got.sum.map(f64::to_bits),
                    want.sum.map(f64::to_bits),
                    "sum bits {ctx}"
                );
                assert_eq!(got.min, want.min, "min {ctx}");
                assert_eq!(got.max, want.max, "max {ctx}");
                assert_eq!(got.positions, want.positions, "positions {ctx}");
            }
        }
    }
}

#[test]
fn adaptive_zone_partition_survives_any_query_sequence() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5004 ^ case);
        let len = rng.gen_range(0..5000usize);
        let preds = gen_preds(&mut rng, 1, 30);
        let data: Vec<i64> = (0..len as i64).map(|i| (i * 37) % 997 - 500).collect();
        let mut zm = AdaptiveZonemap::new(len, test_config());
        for pred in preds {
            check_soundness(&mut zm, &data, pred);
            zm.assert_invariants();
        }
    }
}

#[test]
fn adaptive_soundness_under_interleaved_appends() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5005 ^ case);
        let mut data = gen_data(&mut rng, 2000);
        let pred = gen_pred(&mut rng);
        let n_batches = rng.gen_range(0..6usize);
        let mut zm = AdaptiveZonemap::new(data.len(), test_config());
        check_soundness(&mut zm, &data, pred);
        for _ in 0..n_batches {
            let batch = {
                let b = rng.gen_range(1..100usize);
                (0..b)
                    .map(|_| rng.gen_range(-1000i64..1000))
                    .collect::<Vec<_>>()
            };
            let old = data.len();
            data.extend_from_slice(&batch);
            zm.on_append(&data[old..], &data);
            zm.assert_invariants();
            check_soundness(&mut zm, &data, pred);
            let (got, _) = execute(&data, &mut zm, pred, AggKind::Count);
            let want = execute_reference(&data, pred, AggKind::Count);
            assert_eq!(got.count, want.count, "case {case}");
        }
    }
}

#[test]
fn cracking_preserves_multiset() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5006 ^ case);
        let data = gen_data(&mut rng, 2000);
        let preds = gen_preds(&mut rng, 1, 10);
        let mut cc = CrackerColumn::build(&data);
        for pred in &preds {
            let _ = cc.prune(pred);
        }
        let mut original = data.clone();
        let mut cracked = cc.view().expect("cracker exposes its view").to_vec();
        original.sort_unstable();
        cracked.sort_unstable();
        assert_eq!(original, cracked, "case {case}");
    }
}

#[test]
fn rangeset_complement_partitions() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5007 ^ case);
        let n = rng.gen_range(500..600usize);
        let n_spans = rng.gen_range(0..20usize);
        let mut spans: Vec<(usize, usize)> = (0..n_spans)
            .map(|_| (rng.gen_range(0..500usize), rng.gen_range(0..50usize)))
            .collect();
        spans.sort_unstable();
        let mut rs = RangeSet::new();
        for (start, w) in spans {
            let end = (start + w).min(n);
            if start < end {
                // push requires increasing starts; clamp overlaps are fine.
                if rs.ranges().last().is_none_or(|r| start >= r.start) {
                    rs.push_span(start, end);
                }
            }
        }
        let comp = rs.complement(n);
        assert_eq!(rs.covered_rows() + comp.covered_rows(), n, "case {case}");
        for row in 0..n {
            assert!(
                rs.contains(row) != comp.contains(row),
                "case {case} row {row}"
            );
        }
    }
}

/// totalOrder equality — the only equality under which NaN bounds compare
/// equal to themselves, which the float kernel properties need.
fn same<T: DataValue>(a: T, b: T) -> bool {
    a.total_cmp(&b) == Ordering::Equal
}

/// Asserts every block-vectorized kernel in `scan` agrees with its retained
/// scalar reference in `scan::scalar` on this exact input — counts and
/// positions exactly, min/max under totalOrder, float sums bit-for-bit.
fn assert_block_kernels_match_scalar<T: DataValue>(data: &[T], lo: T, hi: T, ctx: &str) {
    assert_eq!(
        scan::count_in_range(data, lo, hi),
        scan::scalar::count_in_range(data, lo, hi),
        "count_in_range {ctx}"
    );

    let (c1, mn1, mx1) = scan::count_in_range_with_minmax(data, lo, hi);
    let (c2, mn2, mx2) = scan::scalar::count_in_range_with_minmax(data, lo, hi);
    assert!(
        c1 == c2 && same(mn1, mn2) && same(mx1, mx2),
        "count_in_range_with_minmax {ctx}"
    );

    let (sc1, sum1) = scan::sum_in_range(data, lo, hi);
    let (sc2, sum2) = scan::scalar::sum_in_range(data, lo, hi);
    assert_eq!(sc1, sc2, "sum_in_range count {ctx}");
    assert_eq!(
        sum1.to_bits(),
        sum2.to_bits(),
        "sum_in_range bits {ctx}: {sum1} vs {sum2}"
    );

    // A non-zero base exercises the position-offset arithmetic too.
    let base = 3usize;
    let mut pos1 = Vec::new();
    let mut pos2 = Vec::new();
    scan::collect_in_range(data, base, lo, hi, &mut pos1);
    scan::scalar::collect_in_range(data, base, lo, hi, &mut pos2);
    assert_eq!(pos1, pos2, "collect_in_range {ctx}");

    let mut bm1 = Bitmap::new(base + data.len());
    let mut bm2 = Bitmap::new(base + data.len());
    scan::fill_bitmap_in_range(data, base, lo, hi, &mut bm1);
    scan::scalar::fill_bitmap_in_range(data, base, lo, hi, &mut bm2);
    assert_eq!(
        bm1.to_positions(),
        bm2.to_positions(),
        "fill_bitmap_in_range {ctx}"
    );

    let a1 = scan::aggregate_in_range(data, lo, hi);
    let a2 = scan::scalar::aggregate_in_range(data, lo, hi);
    assert!(
        a1.count == a2.count
            && a1.sum.to_bits() == a2.sum.to_bits()
            && same(a1.range_min, a2.range_min)
            && same(a1.range_max, a2.range_max)
            && same(a1.match_min, a2.match_min)
            && same(a1.match_max, a2.match_max),
        "aggregate_in_range {ctx}"
    );

    let mut cp1 = Vec::new();
    let mut cp2 = Vec::new();
    let (cc1, cmn1, cmx1) = scan::collect_in_range_with_minmax(data, base, lo, hi, &mut cp1);
    let (cc2, cmn2, cmx2) =
        scan::scalar::collect_in_range_with_minmax(data, base, lo, hi, &mut cp2);
    assert!(
        cc1 == cc2 && cp1 == cp2 && same(cmn1, cmn2) && same(cmx1, cmx2),
        "collect_in_range_with_minmax {ctx}"
    );

    let mut fb1 = Bitmap::new(base + data.len());
    let mut fb2 = Bitmap::new(base + data.len());
    let (fc1, fmn1, fmx1) = scan::fill_bitmap_in_range_with_minmax(data, base, lo, hi, &mut fb1);
    let (fc2, fmn2, fmx2) =
        scan::scalar::fill_bitmap_in_range_with_minmax(data, base, lo, hi, &mut fb2);
    assert!(
        fc1 == fc2 && same(fmn1, fmn2) && same(fmx1, fmx2),
        "fill_bitmap_in_range_with_minmax aggregates {ctx}"
    );
    assert_eq!(
        fb1.to_positions(),
        fb2.to_positions(),
        "fill_bitmap_in_range_with_minmax bits {ctx}"
    );

    match (
        scan::min_max_in_range(data, lo, hi),
        scan::scalar::min_max_in_range(data, lo, hi),
    ) {
        (None, None) => {}
        (Some((m1, x1)), Some((m2, x2))) => {
            assert!(same(m1, m2) && same(x1, x2), "min_max_in_range {ctx}")
        }
        _ => panic!("min_max_in_range presence mismatch {ctx}"),
    }
}

/// Lengths that straddle the 64-lane block boundary: empty, the scalar
/// tail alone, exact blocks, and ±1 around one and two blocks.
const LANE_EDGE_LENS: [usize; 9] = [0, 1, 63, 64, 65, 127, 128, 129, 200];

#[test]
fn block_kernels_match_scalar_reference_i64() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x500A ^ case);
        for &len in &LANE_EDGE_LENS {
            let mut data: Vec<i64> = (0..len).map(|_| rng.gen_range(-1000i64..1000)).collect();
            // Sprinkle type extremes so boundary predicates get exercised.
            if !data.is_empty() {
                let i = rng.gen_range(0..data.len());
                data[i] = *[i64::MIN, i64::MAX, 0].get(case as usize % 3).unwrap();
            }
            let pred = gen_pred(&mut rng);
            let ctx = format!("i64 case {case} len {len}");
            assert_block_kernels_match_scalar(&data, pred.lo, pred.hi, &ctx);
        }
        // One random length per case, away from the curated edges.
        let len = rng.gen_range(0..400usize);
        let data: Vec<i64> = (0..len).map(|_| rng.gen_range(-1000i64..1000)).collect();
        let pred = gen_pred(&mut rng);
        assert_block_kernels_match_scalar(
            &data,
            pred.lo,
            pred.hi,
            &format!("i64 case {case} len {len}"),
        );
    }
}

/// Edge values every float kernel must agree on: NaNs of both signs, both
/// zeros, both infinities.
fn gen_f64_edgy(rng: &mut StdRng, len: usize) -> Vec<f64> {
    const EDGES: [f64; 6] = [f64::NAN, 0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY, 1.0];
    (0..len)
        .map(|_| {
            if rng.gen_range(0..4usize) == 0 {
                let e = EDGES[rng.gen_range(0..EDGES.len())];
                if rng.gen_range(0..2usize) == 0 {
                    -e
                } else {
                    e
                }
            } else {
                rng.gen_range(-1_000_000i64..1_000_000) as f64 / 64.0
            }
        })
        .collect()
}

#[test]
fn block_kernels_match_scalar_reference_floats() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x500B ^ case);
        for &len in &LANE_EDGE_LENS {
            let data = gen_f64_edgy(&mut rng, len);
            // Predicate bounds drawn from the same edgy distribution, so
            // lo/hi themselves are sometimes NaN, ±0.0, or infinite (an
            // inverted or never-matching range is a valid equivalence
            // case, not an error).
            let bounds = gen_f64_edgy(&mut rng, 2);
            let (lo, hi) = (bounds[0], bounds[1]);
            let ctx = format!("f64 case {case} len {len}");
            assert_block_kernels_match_scalar(&data, lo, hi, &ctx);

            let data32: Vec<f32> = data.iter().map(|&v| v as f32).collect();
            let ctx32 = format!("f32 case {case} len {len}");
            assert_block_kernels_match_scalar(&data32, lo as f32, hi as f32, &ctx32);
        }
    }
}

#[test]
fn soa_prune_plane_matches_aos_reference() {
    // The SoA prune plane is an acceleration structure, not a semantic
    // change: on any interleaving of queries, observations, structural
    // adaptation, and appends, the plane-driven `prune` must produce the
    // same `PruneOutcome` and leave the same observable zone state as the
    // retained AoS reference loop (`prune_via_zones`).
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x500C ^ case);
        let mut data = gen_data(&mut rng, 3000);
        let mut plane_zm = AdaptiveZonemap::new(data.len(), test_config());
        let mut aos_zm = plane_zm.clone();
        let steps = rng.gen_range(6..30usize);
        for step in 0..steps {
            if rng.gen_range(0..6usize) == 0 {
                let batch: Vec<i64> = (0..rng.gen_range(1..150usize))
                    .map(|_| rng.gen_range(-1000i64..1000))
                    .collect();
                let old = data.len();
                data.extend_from_slice(&batch);
                plane_zm.on_append(&data[old..], &data);
                aos_zm.on_append(&data[old..], &data);
            } else {
                let pred = gen_pred(&mut rng);
                let plane_out = plane_zm.prune(&pred);
                let aos_out = aos_zm.prune_via_zones(&pred);
                assert_eq!(
                    plane_out, aos_out,
                    "case {case} step {step}: prune outcomes diverged"
                );
                // Feed both the same honest observation so adaptation
                // (splits, merges, deactivation, revival) stays in step.
                let mut ranges = Vec::new();
                for unit in plane_out.units() {
                    let (q, min, max) = scan::count_in_range_with_minmax(
                        &data[unit.start..unit.end],
                        pred.lo,
                        pred.hi,
                    );
                    ranges.push(RangeObservation::new(*unit, q, min, max));
                }
                let obs = ScanObservation {
                    predicate: pred,
                    ranges,
                };
                plane_zm.observe(&obs);
                aos_zm.observe(&obs);
            }
            plane_zm.assert_invariants();
            aos_zm.assert_invariants();
            assert_eq!(
                plane_zm.zone_snapshot(),
                aos_zm.zone_snapshot(),
                "case {case} step {step}: zone snapshots diverged"
            );
        }
    }
}

#[test]
fn static_zonemap_metadata_always_exact() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5008 ^ case);
        let data = gen_data(&mut rng, 2000);
        let zone_rows = rng.gen_range(1..200usize);
        let mut zm = StaticZonemap::build(&data, zone_rows);
        // Metadata truth implies soundness for every predicate; spot-check
        // with predicates derived from the data itself.
        if let Some((min, max)) = scan::min_max(&data) {
            for pred in [
                RangePredicate::point(min),
                RangePredicate::point(max),
                RangePredicate::between(min, max),
            ] {
                check_soundness(&mut zm, &data, pred);
            }
        }
    }
}

#[test]
fn shared_prune_matches_mutable_prune_after_publication_poll() {
    // The concurrent read path (`prune_shared`) must convert predicates
    // into exactly the ranges the mutable `prune` would, given the state a
    // snapshot publisher hands out — i.e. after `poll_revival`, which is
    // what the service's maintenance thread runs before every publication.
    // This is the decision-identity the server's exactness rests on.
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5EA7 ^ case);
        let data = gen_data(&mut rng, 3000);
        let mut zm = AdaptiveZonemap::new(data.len(), test_config());
        let steps = rng.gen_range(10..40usize);
        for step in 0..steps {
            let pred = gen_pred(&mut rng);
            zm.poll_revival();
            let shared_out = zm.prune_shared(&pred);
            let mutable_out = zm.prune(&pred);
            assert_eq!(
                shared_out, mutable_out,
                "case {case} step {step}: shared prune diverged from mutable prune"
            );
            // Honest observations keep splits/merges/deactivation moving so
            // the equivalence is exercised across structural change.
            let mut ranges = Vec::new();
            for unit in mutable_out.units() {
                let (q, min, max) =
                    scan::count_in_range_with_minmax(&data[unit.start..unit.end], pred.lo, pred.hi);
                ranges.push(RangeObservation::new(*unit, q, min, max));
            }
            zm.observe(&ScanObservation {
                predicate: pred,
                ranges,
            });
            zm.assert_invariants();
        }
    }
}

//! Property-based tests over the framework's core invariants.

use adaptive_data_skipping::baselines::{ColumnImprints, CrackerColumn, SortedOracle};
use adaptive_data_skipping::core::adaptive::{AdaptiveConfig, AdaptiveZonemap};
use adaptive_data_skipping::core::{
    RangeObservation, RangePredicate, ScanObservation, SkippingIndex, StaticZonemap,
};
use adaptive_data_skipping::engine::{execute, execute_reference, AggKind, Strategy};
use adaptive_data_skipping::storage::{scan, RangeSet};
use proptest::prelude::*;
// `engine::Strategy` shadows the proptest trait's name; re-import the trait
// anonymously so `.prop_map` resolves.
use proptest::strategy::Strategy as _;

/// Small adaptive config so structural churn happens at test scale.
fn test_config() -> AdaptiveConfig {
    AdaptiveConfig {
        target_zone_rows: 64,
        min_zone_rows: 8,
        max_zone_rows: 512,
        split_after_wasted: 1,
        merge_after_probes: 2,
        deactivate_after_probes: 4,
        maintenance_every: 2,
        revival_base_queries: Some(8),
        ..AdaptiveConfig::default()
    }
}

fn arb_data() -> impl proptest::strategy::Strategy<Value = Vec<i64>> {
    prop::collection::vec(-1000i64..1000, 0..2000)
}

fn arb_pred() -> impl proptest::strategy::Strategy<Value = RangePredicate<i64>> {
    (-1200i64..1200, 0i64..500).prop_map(|(lo, w)| RangePredicate::between(lo, lo + w))
}

/// Drives the prune/scan/observe loop once and checks soundness: every
/// qualifying row is covered by must_scan or full_match, and full_match
/// ranges contain only qualifying rows.
fn check_soundness(index: &mut dyn SkippingIndex<i64>, data: &[i64], pred: RangePredicate<i64>) {
    let out = index.prune(&pred);
    let target: Vec<i64> = match index.view() {
        Some(v) => v.to_vec(),
        None => data.to_vec(),
    };
    for (i, &v) in target.iter().enumerate() {
        if pred.matches(v) {
            assert!(
                out.must_scan.contains(i) || out.full_match.contains(i),
                "row {i} (value {v}) lost under {}",
                index.name()
            );
        }
    }
    for r in out.full_match.ranges() {
        for i in r.start..r.end {
            assert!(
                pred.matches(target[i]),
                "row {i} wrongly full-matched under {}",
                index.name()
            );
        }
    }
    // Feed honest observations so adaptive structures keep evolving.
    let mut ranges = Vec::new();
    for unit in out.units() {
        let (q, min, max) =
            scan::count_in_range_with_minmax(&target[unit.start..unit.end], pred.lo, pred.hi);
        ranges.push(RangeObservation::new(*unit, q, min, max));
    }
    index.observe(&ScanObservation {
        predicate: pred,
        ranges,
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prune_soundness_all_indexes(data in arb_data(), preds in prop::collection::vec(arb_pred(), 1..12)) {
        let mut indexes: Vec<Box<dyn SkippingIndex<i64>>> = vec![
            Box::new(StaticZonemap::build(&data, 37)),
            Box::new(AdaptiveZonemap::new(data.len(), test_config())),
            Box::new(ColumnImprints::build(&data, 8, 16)),
            Box::new(CrackerColumn::build(&data)),
            Box::new(SortedOracle::build(&data)),
        ];
        for pred in &preds {
            for index in &mut indexes {
                check_soundness(index.as_mut(), &data, *pred);
            }
        }
    }

    #[test]
    fn answers_match_reference_for_random_workloads(
        data in arb_data(),
        preds in prop::collection::vec(arb_pred(), 1..10),
    ) {
        for strategy in Strategy::roster() {
            let mut index = strategy.build_index(&data);
            for pred in &preds {
                let (got, _) = execute(&data, index.as_mut(), *pred, AggKind::Count);
                let want = execute_reference(&data, *pred, AggKind::Count);
                prop_assert_eq!(got.count, want.count, "{}", strategy.label());
            }
        }
    }

    #[test]
    fn positions_match_reference(data in arb_data(), pred in arb_pred()) {
        for strategy in Strategy::roster() {
            let mut index = strategy.build_index(&data);
            // Run twice: once to let adaptive structures reorganise, once
            // to answer from the reorganised state.
            let _ = execute(&data, index.as_mut(), pred, AggKind::Positions);
            let (got, _) = execute(&data, index.as_mut(), pred, AggKind::Positions);
            let want = execute_reference(&data, pred, AggKind::Positions);
            prop_assert_eq!(got.positions, want.positions, "{}", strategy.label());
        }
    }

    #[test]
    fn adaptive_zone_partition_survives_any_query_sequence(
        len in 0usize..5000,
        preds in prop::collection::vec(arb_pred(), 0..30),
    ) {
        let data: Vec<i64> = (0..len as i64).map(|i| (i * 37) % 997 - 500).collect();
        let mut zm = AdaptiveZonemap::new(len, test_config());
        for pred in preds {
            check_soundness(&mut zm, &data, pred);
            zm.assert_invariants();
        }
    }

    #[test]
    fn adaptive_soundness_under_interleaved_appends(
        initial in arb_data(),
        batches in prop::collection::vec(prop::collection::vec(-1000i64..1000, 1..100), 0..6),
        pred in arb_pred(),
    ) {
        let mut data = initial;
        let mut zm = AdaptiveZonemap::new(data.len(), test_config());
        check_soundness(&mut zm, &data, pred);
        for batch in batches {
            let old = data.len();
            data.extend_from_slice(&batch);
            zm.on_append(&data[old..], &data);
            zm.assert_invariants();
            check_soundness(&mut zm, &data, pred);
            let (got, _) = execute(&data, &mut zm, pred, AggKind::Count);
            let want = execute_reference(&data, pred, AggKind::Count);
            prop_assert_eq!(got.count, want.count);
        }
    }

    #[test]
    fn cracking_preserves_multiset(data in arb_data(), preds in prop::collection::vec(arb_pred(), 1..10)) {
        let mut cc = CrackerColumn::build(&data);
        for pred in &preds {
            let _ = cc.prune(pred);
        }
        let mut original = data.clone();
        let mut cracked = cc.view().expect("cracker exposes its view").to_vec();
        original.sort_unstable();
        cracked.sort_unstable();
        prop_assert_eq!(original, cracked);
    }

    #[test]
    fn rangeset_complement_partitions(spans in prop::collection::vec((0usize..500, 0usize..50), 0..20), n in 500usize..600) {
        let mut rs = RangeSet::new();
        let mut sorted = spans.clone();
        sorted.sort_unstable();
        for (start, w) in sorted {
            let end = (start + w).min(n);
            if start < end {
                // push requires increasing starts; clamp overlaps are fine.
                if rs.ranges().last().is_none_or(|r| start >= r.start) {
                    rs.push_span(start, end);
                }
            }
        }
        let comp = rs.complement(n);
        prop_assert_eq!(rs.covered_rows() + comp.covered_rows(), n);
        for row in 0..n {
            prop_assert!(rs.contains(row) != comp.contains(row));
        }
    }

    #[test]
    fn static_zonemap_metadata_always_exact(data in arb_data(), zone_rows in 1usize..200) {
        let mut zm = StaticZonemap::build(&data, zone_rows);
        // Metadata truth implies soundness for every predicate; spot-check
        // with predicates derived from the data itself.
        if let Some((min, max)) = scan::min_max(&data) {
            for pred in [
                RangePredicate::point(min),
                RangePredicate::point(max),
                RangePredicate::between(min, max),
            ] {
                check_soundness(&mut zm, &data, pred);
            }
        }
    }
}

//! Integration-level behavioural guarantees of adaptive zonemaps: the
//! qualitative claims the paper's framework makes, checked end-to-end
//! through the engine.

use adaptive_data_skipping::core::adaptive::AdaptiveConfig;
use adaptive_data_skipping::core::RangePredicate;
use adaptive_data_skipping::engine::{AggKind, ColumnSession, Strategy};
use adaptive_data_skipping::workloads::{DataSpec, QuerySpec};

const N: usize = 200_000;
const DOMAIN: i64 = 1_000_000;

fn run_workload(session: &mut ColumnSession<i64>, queries: &[(i64, i64)]) {
    for &(lo, hi) in queries {
        session.query(RangePredicate::between(lo, hi), AggKind::Count);
    }
}

fn queries(selectivity: f64, count: usize, seed: u64) -> Vec<(i64, i64)> {
    QuerySpec::UniformRandom { selectivity }
        .generate(count, DOMAIN, seed)
        .into_iter()
        .map(|q| (q.lo, q.hi))
        .collect()
}

#[test]
fn adaptive_converges_to_skipping_on_sorted_data() {
    let data = DataSpec::Sorted.generate(N, DOMAIN, 1);
    let mut s = ColumnSession::new(data, &Strategy::Adaptive(AdaptiveConfig::default()))
        .record_history(true);
    run_workload(&mut s, &queries(0.01, 50, 2));
    let h = s.history();
    assert_eq!(h[0].rows_scanned, N, "first query scans everything");
    let late: usize = h[40..].iter().map(|m| m.rows_scanned).sum::<usize>() / 10;
    assert!(
        late < N / 20,
        "late queries should skip ~everything: {late}"
    );
}

#[test]
fn adaptive_scan_volume_tracks_full_scan_on_random_data() {
    // On uniform data nothing can be skipped; adaptation must converge to
    // scanning everything with only a small bounded number of zone entries
    // (deactivated extents), not thousands of useless probes.
    let data = DataSpec::Uniform.generate(N, DOMAIN, 3);
    let mut s = ColumnSession::new(data, &Strategy::Adaptive(AdaptiveConfig::default()))
        .record_history(true);
    run_workload(&mut s, &queries(0.01, 300, 4));
    let h = s.history();
    let late = &h[250..];
    let mean_probes: f64 =
        late.iter().map(|m| m.zones_probed as f64).sum::<f64>() / late.len() as f64;
    let initial_zones = N / 4096;
    assert!(
        mean_probes < initial_zones as f64 / 4.0,
        "metadata should have been merged/deactivated: {mean_probes} probes/query"
    );
    assert!(late.iter().all(|m| m.rows_scanned == N));
}

#[test]
fn adaptive_beats_static_on_mixed_regions() {
    // The headline qualitative claim: on data whose regions differ, one
    // static granularity loses somewhere; adaptation wins overall.
    let data = DataSpec::MixedRegions.generate(N, DOMAIN, 5);
    let qs = queries(0.01, 300, 6);

    let mut adaptive =
        ColumnSession::new(data.clone(), &Strategy::Adaptive(AdaptiveConfig::default()));
    let mut static_zm = ColumnSession::new(data, &Strategy::StaticZonemap { zone_rows: 4096 });
    run_workload(&mut adaptive, &qs);
    run_workload(&mut static_zm, &qs);

    // Compare total rows scanned (a hardware-independent proxy for work).
    let a = adaptive.totals().rows_scanned;
    let s = static_zm.totals().rows_scanned;
    assert!(
        a < s,
        "adaptive should scan less on mixed data: adaptive {a} vs static {s}"
    );
}

#[test]
fn deactivation_bounds_probe_overhead() {
    let data = DataSpec::Uniform.generate(N, DOMAIN, 7);
    let qs = queries(0.01, 400, 8);

    let mut with = ColumnSession::new(data.clone(), &Strategy::Adaptive(AdaptiveConfig::default()));
    let mut without = ColumnSession::new(
        data,
        &Strategy::Adaptive(AdaptiveConfig {
            enable_merge: false,
            enable_deactivate: false,
            ..AdaptiveConfig::default()
        }),
    );
    run_workload(&mut with, &qs);
    run_workload(&mut without, &qs);
    assert!(
        with.totals().zones_probed < without.totals().zones_probed,
        "merge+deactivate should cut probes: {} vs {}",
        with.totals().zones_probed,
        without.totals().zones_probed
    );
}

#[test]
fn split_refines_only_where_the_workload_lands() {
    // Hotspot queries over sorted data: skipping works immediately, and
    // refinement (if any) must not blow up the zone count elsewhere.
    let data = DataSpec::Sorted.generate(N, DOMAIN, 9);
    let qs: Vec<(i64, i64)> = QuerySpec::Hotspot {
        selectivity: 0.001,
        center: 0.3,
    }
    .generate(200, DOMAIN, 10)
    .into_iter()
    .map(|q| (q.lo, q.hi))
    .collect();
    let mut s = ColumnSession::new(data, &Strategy::Adaptive(AdaptiveConfig::default()))
        .record_history(true);
    run_workload(&mut s, &qs);
    let late = &s.history()[150..];
    let mean_scanned: f64 =
        late.iter().map(|m| m.rows_scanned as f64).sum::<f64>() / late.len() as f64;
    assert!(
        mean_scanned < 3.0 * 4096.0,
        "hotspot queries should touch ~one zone: {mean_scanned}"
    );
}

#[test]
fn workload_shift_recovers() {
    // After the hotspot moves, latency-proxy (rows scanned) must come back
    // down within the second phase.
    let data = DataSpec::Clustered { clusters: 64 }.generate(N, DOMAIN, 11);
    let phase1: Vec<(i64, i64)> = QuerySpec::Hotspot {
        selectivity: 0.002,
        center: 0.2,
    }
    .generate(150, DOMAIN, 12)
    .into_iter()
    .map(|q| (q.lo, q.hi))
    .collect();
    let phase2: Vec<(i64, i64)> = QuerySpec::Hotspot {
        selectivity: 0.002,
        center: 0.8,
    }
    .generate(150, DOMAIN, 13)
    .into_iter()
    .map(|q| (q.lo, q.hi))
    .collect();

    let mut s = ColumnSession::new(data, &Strategy::Adaptive(AdaptiveConfig::default()))
        .record_history(true);
    run_workload(&mut s, &phase1);
    run_workload(&mut s, &phase2);
    let h = s.history();
    let phase2_early: f64 = h[150..160]
        .iter()
        .map(|m| m.rows_scanned as f64)
        .sum::<f64>()
        / 10.0;
    let phase2_late: f64 = h[290..].iter().map(|m| m.rows_scanned as f64).sum::<f64>() / 10.0;
    assert!(
        phase2_late <= phase2_early,
        "second phase should re-converge: early {phase2_early}, late {phase2_late}"
    );
}

#[test]
fn ablation_presets_change_behaviour_not_answers() {
    let data = DataSpec::MixedRegions.generate(N, DOMAIN, 15);
    let qs = queries(0.01, 100, 16);
    let configs = [
        AdaptiveConfig::lazy_only(),
        AdaptiveConfig::split_only(),
        AdaptiveConfig::no_deactivate(),
        AdaptiveConfig::default(),
    ];
    let mut checksums = Vec::new();
    for cfg in configs {
        let mut s = ColumnSession::new(data.clone(), &Strategy::Adaptive(cfg));
        let mut sum = 0u64;
        for &(lo, hi) in &qs {
            sum = sum.wrapping_add(s.count(RangePredicate::between(lo, hi)));
        }
        checksums.push(sum);
    }
    assert!(checksums.windows(2).all(|w| w[0] == w[1]));
}

//! Cross-crate correctness: every strategy must produce identical answers
//! for every aggregate on every distribution.

use adaptive_data_skipping::core::RangePredicate;
use adaptive_data_skipping::engine::{execute_reference, AggKind, ColumnSession, Strategy};
use adaptive_data_skipping::workloads::{DataSpec, QuerySpec};

const N: usize = 50_000;
const DOMAIN: i64 = 100_000;

fn distributions() -> Vec<DataSpec> {
    vec![
        DataSpec::Sorted,
        DataSpec::ReverseSorted,
        DataSpec::AlmostSorted { noise: 0.1 },
        DataSpec::Clustered { clusters: 16 },
        DataSpec::Uniform,
        DataSpec::Zipf { theta: 0.99 },
        DataSpec::Sawtooth { periods: 8 },
        DataSpec::MixedRegions,
    ]
}

#[test]
fn count_equivalence_across_all_strategies_and_distributions() {
    let queries = QuerySpec::UniformRandom { selectivity: 0.02 }.generate(40, DOMAIN, 7);
    for spec in distributions() {
        let data = spec.generate(N, DOMAIN, 3);
        for strategy in Strategy::roster() {
            let mut session = ColumnSession::new(data.clone(), &strategy);
            for (qi, q) in queries.iter().enumerate() {
                let pred = RangePredicate::between(q.lo, q.hi);
                let expected = execute_reference(&data, pred, AggKind::Count).count;
                assert_eq!(
                    session.count(pred),
                    expected,
                    "{} on {} query {qi}",
                    strategy.label(),
                    spec.label()
                );
            }
        }
    }
}

#[test]
fn all_aggregates_equivalent_on_mixed_data() {
    let data = DataSpec::MixedRegions.generate(N, DOMAIN, 5);
    let queries = QuerySpec::UniformRandom { selectivity: 0.05 }.generate(12, DOMAIN, 9);
    for strategy in Strategy::roster() {
        let mut session = ColumnSession::new(data.clone(), &strategy);
        for q in &queries {
            let pred = RangePredicate::between(q.lo, q.hi);
            for agg in [
                AggKind::Count,
                AggKind::Sum,
                AggKind::Min,
                AggKind::Max,
                AggKind::Positions,
            ] {
                let (got, _) = session.query(pred, agg);
                let want = execute_reference(&data, pred, agg);
                assert_eq!(
                    got.count,
                    want.count,
                    "{} count ({agg:?})",
                    strategy.label()
                );
                match agg {
                    AggKind::Sum => {
                        let (a, b) = (got.sum.unwrap(), want.sum.unwrap());
                        assert!((a - b).abs() < 1e-6, "{} sum: {a} vs {b}", strategy.label());
                    }
                    AggKind::Min => assert_eq!(got.min, want.min, "{} min", strategy.label()),
                    AggKind::Max => assert_eq!(got.max, want.max, "{} max", strategy.label()),
                    AggKind::Positions => {
                        assert_eq!(
                            got.positions,
                            want.positions,
                            "{} positions",
                            strategy.label()
                        )
                    }
                    AggKind::Count => {}
                }
            }
        }
    }
}

#[test]
fn point_and_boundary_predicates() {
    let data = DataSpec::Clustered { clusters: 8 }.generate(N, DOMAIN, 13);
    let (dmin, dmax) = (
        *data.iter().min().expect("non-empty"),
        *data.iter().max().expect("non-empty"),
    );
    let preds = [
        RangePredicate::point(dmin),
        RangePredicate::point(dmax),
        RangePredicate::point((dmin + dmax) / 2),
        RangePredicate::between(dmin, dmax),
        RangePredicate::at_most(dmin),
        RangePredicate::at_least(dmax),
        RangePredicate::all(),
        RangePredicate::between(dmax + 1, i64::MAX), // empty result
    ];
    for strategy in Strategy::roster() {
        let mut session = ColumnSession::new(data.clone(), &strategy);
        for pred in preds {
            let expected = execute_reference(&data, pred, AggKind::Count).count;
            assert_eq!(session.count(pred), expected, "{} {pred}", strategy.label());
        }
    }
}

#[test]
fn repeated_identical_queries_stay_correct_while_adapting() {
    // Adaptation mutates structure between identical queries; answers must
    // never drift.
    let data = DataSpec::Uniform.generate(N, DOMAIN, 17);
    let pred = RangePredicate::between(DOMAIN / 4, DOMAIN / 2);
    let expected = execute_reference(&data, pred, AggKind::Count).count;
    for strategy in Strategy::roster() {
        let mut session = ColumnSession::new(data.clone(), &strategy);
        for i in 0..50 {
            assert_eq!(
                session.count(pred),
                expected,
                "{} iter {i}",
                strategy.label()
            );
        }
    }
}

#[test]
fn tiny_and_empty_columns() {
    for n in [0usize, 1, 2, 63, 64, 65] {
        let data: Vec<i64> = (0..n as i64).collect();
        for strategy in Strategy::roster() {
            let mut session = ColumnSession::new(data.clone(), &strategy);
            let pred = RangePredicate::between(0, 10);
            let expected = execute_reference(&data, pred, AggKind::Count).count;
            assert_eq!(session.count(pred), expected, "{} n={n}", strategy.label());
        }
    }
}

//! Failure injection: the observe channel is driven with degenerate,
//! misaligned, or stale feedback, and the indexes must stay sound.
//!
//! The executor always feeds honest observations, but the framework's
//! public API cannot assume every caller does (the multi-column path
//! already produces non-zone-aligned ranges by design). These tests pin
//! the defensive behaviour: misaligned feedback is ignored, never
//! incorporated.

use adaptive_data_skipping::core::adaptive::{AdaptiveConfig, AdaptiveZonemap};
use adaptive_data_skipping::core::{
    RangeObservation, RangePredicate, ScanObservation, SkippingIndex,
};
use adaptive_data_skipping::engine::{execute, execute_reference, AggKind};
use adaptive_data_skipping::storage::RowRange;
use adaptive_data_skipping::workloads::data;

fn config() -> AdaptiveConfig {
    AdaptiveConfig {
        target_zone_rows: 256,
        min_zone_rows: 32,
        max_zone_rows: 2048,
        maintenance_every: 2,
        ..AdaptiveConfig::default()
    }
}

fn assert_sound(zm: &mut AdaptiveZonemap<i64>, column: &[i64]) {
    for q in 0..10 {
        let lo = (q * 997) % 40_000;
        let pred = RangePredicate::between(lo, lo + 2_000);
        let (got, _) = execute(column, zm, pred, AggKind::Count);
        let want = execute_reference(column, pred, AggKind::Count);
        assert_eq!(got.count, want.count);
    }
    zm.assert_invariants();
}

#[test]
fn misaligned_observations_are_ignored() {
    let column = data::uniform(10_000, 50_000, 1);
    let mut zm = AdaptiveZonemap::new(column.len(), config());
    let pred = RangePredicate::between(0, 1000);
    // Ranges that match no zone boundary, including out-of-phase and
    // overlapping ones. A naive implementation would install their
    // (min, max) as zone metadata and break soundness.
    let hostile = ScanObservation {
        predicate: pred,
        ranges: vec![
            RangeObservation::new(RowRange::new(13, 217), 0, 40_000, 40_001),
            RangeObservation::new(RowRange::new(100, 900), 0, 49_000, 49_001),
            RangeObservation::new(RowRange::new(0, column.len()), 0, 49_000, 49_001),
        ],
    };
    for _ in 0..5 {
        zm.observe(&hostile);
    }
    assert_eq!(zm.trace().totals().built, 0, "nothing zone-exact was fed");
    assert_sound(&mut zm, &column);
}

#[test]
fn empty_and_degenerate_observations() {
    let column = data::uniform(5_000, 50_000, 2);
    let mut zm = AdaptiveZonemap::new(column.len(), config());
    let pred = RangePredicate::all();
    zm.observe(&ScanObservation::empty(pred));
    // Observation for a range beyond the column end: no zone starts there,
    // so it must be ignored rather than panic.
    zm.observe(&ScanObservation {
        predicate: pred,
        ranges: vec![RangeObservation::new(
            RowRange::new(column.len() + 10, column.len() + 20),
            0,
            0,
            0,
        )],
    });
    assert_sound(&mut zm, &column);
}

#[test]
fn stale_observations_after_structural_change_stay_sound() {
    // Capture a prune's units, reorganise the index via other queries,
    // then feed the stale observation. Ranges that no longer match a zone
    // exactly must be ignored; ranges that still match update metadata
    // with values that are exact for those rows (the data is immutable),
    // so soundness holds either way.
    let column = data::uniform(20_000, 50_000, 3);
    let mut zm = AdaptiveZonemap::new(column.len(), config());
    let pred = RangePredicate::between(0, 25_000);
    let out = zm.prune(&pred);
    let stale: Vec<RangeObservation<i64>> = out
        .units()
        .iter()
        .map(|u| {
            let (q, min, max) = adaptive_data_skipping::storage::scan::count_in_range_with_minmax(
                &column[u.start..u.end],
                pred.lo,
                pred.hi,
            );
            RangeObservation::new(*u, q, min, max)
        })
        .collect();
    // Reorganise with live queries in between.
    for q in 0..30 {
        let lo = (q * 911) % 40_000;
        let p = RangePredicate::between(lo, lo + 1_000);
        let _ = execute(&column, &mut zm, p, AggKind::Count);
    }
    zm.observe(&ScanObservation {
        predicate: pred,
        ranges: stale,
    });
    assert_sound(&mut zm, &column);
}

#[test]
fn observation_with_wrong_qualifying_count_cannot_break_answers() {
    // `qualifying` only drives *policy* (selectivity stats); lying about
    // it may cause bad adaptation decisions but never wrong answers.
    let column = data::sorted(10_000, 50_000);
    let mut zm = AdaptiveZonemap::new(column.len(), config());
    let pred = RangePredicate::between(10_000, 12_000);
    let out = zm.prune(&pred);
    let lying: Vec<RangeObservation<i64>> = out
        .units()
        .iter()
        .map(|u| {
            let (_, min, max) = adaptive_data_skipping::storage::scan::count_in_range_with_minmax(
                &column[u.start..u.end],
                pred.lo,
                pred.hi,
            );
            // Exaggerate wildly; min/max stay honest (they are the part
            // with soundness weight).
            RangeObservation::new(*u, u.len(), min, max)
        })
        .collect();
    zm.observe(&ScanObservation {
        predicate: pred,
        ranges: lying,
    });
    assert_sound(&mut zm, &column);
}

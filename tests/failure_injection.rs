//! Failure injection: the observe channel is driven with degenerate,
//! misaligned, or stale feedback, and the indexes must stay sound; the
//! service's mutation path is driven through backpressure, deadline
//! expiry, barrier races, and shutdown, and must stay exact.
//!
//! The executor always feeds honest observations, but the framework's
//! public API cannot assume every caller does (the multi-column path
//! already produces non-zone-aligned ranges by design). These tests pin
//! the defensive behaviour: misaligned feedback is ignored, never
//! incorporated. The server-side cases pin the mutation contract under
//! duress: a shed or expired request never returns a wrong answer, a
//! flush barrier racing a compaction blocks both callers until exact
//! state is published, and every mutation batch is either acknowledged
//! (and visible) or reported lost — never silently dropped.

use adaptive_data_skipping::core::adaptive::{AdaptiveConfig, AdaptiveZonemap};
use adaptive_data_skipping::core::{
    RangeObservation, RangePredicate, ScanObservation, SkippingIndex,
};
use adaptive_data_skipping::engine::{execute, execute_reference, AggKind};
use adaptive_data_skipping::storage::RowRange;
use adaptive_data_skipping::workloads::data;
use ads_server::{
    AdaptationMode, Mutation, QueryService, Reply, Request, ServerConfig, SubmitError,
};
use std::time::Instant;

fn config() -> AdaptiveConfig {
    AdaptiveConfig {
        target_zone_rows: 256,
        min_zone_rows: 32,
        max_zone_rows: 2048,
        maintenance_every: 2,
        ..AdaptiveConfig::default()
    }
}

fn assert_sound(zm: &mut AdaptiveZonemap<i64>, column: &[i64]) {
    for q in 0..10 {
        let lo = (q * 997) % 40_000;
        let pred = RangePredicate::between(lo, lo + 2_000);
        let (got, _) = execute(column, zm, pred, AggKind::Count);
        let want = execute_reference(column, pred, AggKind::Count);
        assert_eq!(got.count, want.count);
    }
    zm.assert_invariants();
}

#[test]
fn misaligned_observations_are_ignored() {
    let column = data::uniform(10_000, 50_000, 1);
    let mut zm = AdaptiveZonemap::new(column.len(), config());
    let pred = RangePredicate::between(0, 1000);
    // Ranges that match no zone boundary, including out-of-phase and
    // overlapping ones. A naive implementation would install their
    // (min, max) as zone metadata and break soundness.
    let hostile = ScanObservation {
        predicate: pred,
        ranges: vec![
            RangeObservation::new(RowRange::new(13, 217), 0, 40_000, 40_001),
            RangeObservation::new(RowRange::new(100, 900), 0, 49_000, 49_001),
            RangeObservation::new(RowRange::new(0, column.len()), 0, 49_000, 49_001),
        ],
    };
    for _ in 0..5 {
        zm.observe(&hostile);
    }
    assert_eq!(zm.trace().totals().built, 0, "nothing zone-exact was fed");
    assert_sound(&mut zm, &column);
}

#[test]
fn empty_and_degenerate_observations() {
    let column = data::uniform(5_000, 50_000, 2);
    let mut zm = AdaptiveZonemap::new(column.len(), config());
    let pred = RangePredicate::all();
    zm.observe(&ScanObservation::empty(pred));
    // Observation for a range beyond the column end: no zone starts there,
    // so it must be ignored rather than panic.
    zm.observe(&ScanObservation {
        predicate: pred,
        ranges: vec![RangeObservation::new(
            RowRange::new(column.len() + 10, column.len() + 20),
            0,
            0,
            0,
        )],
    });
    assert_sound(&mut zm, &column);
}

#[test]
fn stale_observations_after_structural_change_stay_sound() {
    // Capture a prune's units, reorganise the index via other queries,
    // then feed the stale observation. Ranges that no longer match a zone
    // exactly must be ignored; ranges that still match update metadata
    // with values that are exact for those rows (the data is immutable),
    // so soundness holds either way.
    let column = data::uniform(20_000, 50_000, 3);
    let mut zm = AdaptiveZonemap::new(column.len(), config());
    let pred = RangePredicate::between(0, 25_000);
    let out = zm.prune(&pred);
    let stale: Vec<RangeObservation<i64>> = out
        .units()
        .iter()
        .map(|u| {
            let (q, min, max) = adaptive_data_skipping::storage::scan::count_in_range_with_minmax(
                &column[u.start..u.end],
                pred.lo,
                pred.hi,
            );
            RangeObservation::new(*u, q, min, max)
        })
        .collect();
    // Reorganise with live queries in between.
    for q in 0..30 {
        let lo = (q * 911) % 40_000;
        let p = RangePredicate::between(lo, lo + 1_000);
        let _ = execute(&column, &mut zm, p, AggKind::Count);
    }
    zm.observe(&ScanObservation {
        predicate: pred,
        ranges: stale,
    });
    assert_sound(&mut zm, &column);
}

#[test]
fn observation_with_wrong_qualifying_count_cannot_break_answers() {
    // `qualifying` only drives *policy* (selectivity stats); lying about
    // it may cause bad adaptation decisions but never wrong answers.
    let column = data::sorted(10_000, 50_000);
    let mut zm = AdaptiveZonemap::new(column.len(), config());
    let pred = RangePredicate::between(10_000, 12_000);
    let out = zm.prune(&pred);
    let lying: Vec<RangeObservation<i64>> = out
        .units()
        .iter()
        .map(|u| {
            let (_, min, max) = adaptive_data_skipping::storage::scan::count_in_range_with_minmax(
                &column[u.start..u.end],
                pred.lo,
                pred.hi,
            );
            // Exaggerate wildly; min/max stay honest (they are the part
            // with soundness weight).
            RangeObservation::new(*u, u.len(), min, max)
        })
        .collect();
    zm.observe(&ScanObservation {
        predicate: pred,
        ranges: lying,
    });
    assert_sound(&mut zm, &column);
}

// --------------------------------------------------- server mutation path

/// Shed admission and deadline expiry during a delete storm: a request
/// is answered exactly, handed back as [`SubmitError::Shed`], or
/// replied [`Reply::DeadlineMissed`] — never answered wrongly, and the
/// storm's tombstones are never miscounted into any reply.
#[test]
fn shed_and_deadline_during_delete_storm() {
    let base = data::uniform(60_000, 50_000, 7);
    let svc = QueryService::start(
        base.clone(),
        ServerConfig {
            readers: 1,
            shards: 4,
            queue_capacity: 2,
            // Frozen: the zonemap never builds, every query is a full
            // scan — the slow-consumer regime where shedding happens.
            adaptation: AdaptationMode::Frozen,
            ..ServerConfig::default()
        },
    );
    let mut dead = vec![false; base.len()];
    let pred = RangePredicate::between(0i64, 25_000);
    let in_range = |v: i64| (0..=25_000).contains(&v);

    let mut answered = 0u64;
    let mut shed = 0u64;
    for round in 0..6usize {
        // One storm batch between bursts, acked before the next query is
        // submitted, so every answered burst query sees exactly it.
        let batch: Vec<Mutation<i64>> = (round * 600..round * 600 + 400)
            .map(Mutation::Delete)
            .collect();
        assert_eq!(svc.mutate(batch).expect("maintenance lives"), 400);
        for d in dead.iter_mut().skip(round * 600).take(400) {
            *d = true;
        }
        let want = base
            .iter()
            .zip(&dead)
            .filter(|&(&v, &d)| !d && in_range(v))
            .count() as u64;

        // A burst into a 2-slot queue with one slow reader: some of these
        // are shed; the rest must answer exactly.
        let mut tickets = Vec::new();
        for _ in 0..24 {
            match svc.submit(Request::new(pred, AggKind::Count)) {
                Ok(t) => tickets.push(t),
                Err(SubmitError::Shed(_)) => shed += 1,
                Err(SubmitError::ShuttingDown(_)) => panic!("not shutting down"),
            }
        }
        for t in tickets {
            match t.wait() {
                Reply::Answer { answer, .. } => {
                    assert_eq!(answer.count, want, "round {round}: storm miscounted");
                    answered += 1;
                }
                Reply::DeadlineMissed => panic!("no deadline set"),
            }
        }
    }
    assert!(answered > 0, "no burst query was ever answered");

    // An already-expired deadline is reported, not answered — and never
    // wrongly: the service keeps answering exactly afterwards.
    let expired = Request {
        predicate: pred,
        agg: AggKind::Count,
        deadline: Some(Instant::now()),
    };
    match svc.submit(expired).expect("queue is idle").wait() {
        Reply::DeadlineMissed => {}
        Reply::Answer { .. } => panic!("expired request was scanned anyway"),
    }
    let want = base
        .iter()
        .zip(&dead)
        .filter(|&(&v, &d)| !d && in_range(v))
        .count() as u64;
    let reply = svc.query(pred, AggKind::Count).expect("closed loop");
    assert_eq!(reply.answer().expect("no deadline").count, want);

    let stats = svc.shutdown();
    assert_eq!(stats.shed, shed, "every shed must be counted");
    assert!(stats.deadline_missed >= 1);
    assert_eq!(stats.deltas_pending, 0, "acked deltas left pending");
}

/// A flush barrier racing an explicit compaction: both block until
/// their state is published, queries concurrent with the race answer
/// exactly throughout (value aggregates are invariant under
/// compaction), and afterwards the store is fully reclaimed.
#[test]
fn flush_barrier_racing_compaction_stays_exact() {
    let base = data::sorted(40_000, 50_000);
    let svc = QueryService::start(
        base.clone(),
        ServerConfig {
            readers: 2,
            shards: 4,
            ..ServerConfig::default()
        },
    );
    // Tombstone a contiguous band, acked before the race starts.
    let batch: Vec<Mutation<i64>> = (1_000..3_000).map(Mutation::Delete).collect();
    assert_eq!(svc.mutate(batch).expect("maintenance lives"), 2_000);
    let pred = RangePredicate::between(0i64, 20_000);
    let want: u64 = base
        .iter()
        .enumerate()
        .filter(|&(i, &v)| !(1_000..3_000).contains(&i) && (0..=20_000).contains(&v))
        .count() as u64;

    std::thread::scope(|scope| {
        let compactor = scope.spawn(|| svc.compact().expect("maintenance lives"));
        let flusher = scope.spawn(|| svc.flush());
        // Queries racing both barriers: compaction moves rows, never
        // answers.
        for _ in 0..20 {
            let reply = svc.query(pred, AggKind::Count).expect("closed loop");
            assert_eq!(
                reply.answer().expect("no deadline").count,
                want,
                "answer drifted during the flush/compaction race"
            );
        }
        assert_eq!(compactor.join().expect("no panic"), 2_000);
        flusher.join().expect("no panic");
    });

    // The race settled into a fully-reclaimed store: nothing left to
    // compact, answers unchanged.
    assert_eq!(svc.compact().expect("maintenance lives"), 0);
    let reply = svc.query(pred, AggKind::Count).expect("closed loop");
    assert_eq!(reply.answer().expect("no deadline").count, want);
    let stats = svc.shutdown();
    assert_eq!(stats.rows_reclaimed, 2_000);
    assert_eq!(stats.deltas_pending, 0);
}

/// Shutdown after concurrent mutators: every batch a mutator submitted
/// was acknowledged with its exact applied count before `mutate`
/// returned — so at shutdown nothing is pending, nothing was silently
/// dropped, and the survivors are exactly the undeleted rows.
#[test]
fn shutdown_accounts_for_every_queued_mutation() {
    let base = data::uniform(30_000, 50_000, 11);
    let rows = base.len();
    let svc = QueryService::start(
        base,
        ServerConfig {
            readers: 2,
            shards: 8,
            ..ServerConfig::default()
        },
    );

    // Four mutators over disjoint rowid bands (so applied counts are
    // deterministic), racing a reader thread.
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let svc = &svc;
            scope.spawn(move || {
                for chunk in 0..10 {
                    let start = t * 1_000 + chunk * 100;
                    let batch: Vec<Mutation<i64>> =
                        (start..start + 50).map(Mutation::Delete).collect();
                    // The ack-or-Lost contract: a live service always
                    // acks, and with the exact applied count.
                    assert_eq!(svc.mutate(batch).expect("maintenance lives"), 50);
                }
            });
        }
        let svc = &svc;
        scope.spawn(move || {
            for _ in 0..30 {
                let reply = svc
                    .query(RangePredicate::all(), AggKind::Count)
                    .expect("closed loop");
                // Racing deletes: the count is some prefix of the storm,
                // never more than the store or less than the survivors.
                let count = reply.answer().expect("no deadline").count;
                assert!(count <= rows as u64);
                assert!(count >= (rows - 2_000) as u64);
            }
        });
    });

    // All mutators acked: the survivors are exact.
    let reply = svc
        .query(RangePredicate::all(), AggKind::Count)
        .expect("closed loop");
    assert_eq!(
        reply.answer().expect("no deadline").count,
        (rows - 2_000) as u64
    );

    let stats = svc.shutdown();
    assert_eq!(stats.mutations_applied, 2_000);
    assert_eq!(stats.deltas_pending, 0, "unacked mutations at shutdown");
    assert_eq!(stats.tombstone_ppm, (2_000 * 1_000_000 / rows) as u64);
}

//! Equivalence suites for the per-zone metadata tier layer.
//!
//! The layer's contract is purely advisory: a bloom sketch or imprint
//! tier may exclude zones (or line runs inside them) that the `(min,
//! max)` bounds cannot, but it never changes which rows qualify or what
//! any aggregate over them returns. Each test replays randomised
//! workloads across many deterministic seeds and checks every tier mode
//! — `Off`, forced `Bloom`, forced `Imprint`, and the `Adaptive` chooser
//! — against the untiered path and a straight-scan reference, at shard
//! counts {1, 8} and thread counts {1, 8}.
//!
//! f64 SUMs are compared by bit pattern. A tier legitimately reorders
//! the answer fold (imprint sub-zone full-match spans fold before scan
//! units), so the data generator keeps every finite sum exactly
//! representable (dyadic values, well under 2^53) and never mixes data
//! NaNs with inf + -inf indefinites in one column — the propagated NaN
//! payload of such a mix is fold-order-dependent by IEEE semantics, an
//! artifact no skipping layer can (or should) mask.

use adaptive_data_skipping::core::adaptive::{
    AdaptiveConfig, AdaptiveZonemap, ShardedZonemap, TierMode,
};
use adaptive_data_skipping::core::RangePredicate;
use adaptive_data_skipping::engine::{
    execute_reference, execute_sharded, execute_with_policy, AggKind, ExecPolicy, QueryAnswer,
};
use adaptive_data_skipping::storage::{DataValue, ShardedColumn};
use ads_rng::StdRng;
use ads_server::{AdaptationMode, Mutation, QueryService, ServerConfig};
use std::cmp::Ordering;

const CASES: u64 = 32;

const ALL_AGGS: [AggKind; 5] = [
    AggKind::Count,
    AggKind::Sum,
    AggKind::Min,
    AggKind::Max,
    AggKind::Positions,
];

const TIER_MODES: [TierMode; 4] = [
    TierMode::Off,
    TierMode::Bloom,
    TierMode::Imprint,
    TierMode::Adaptive,
];

/// Small zones and eager tier policy so builds, drops, and tier probes
/// all happen at test scale, composed with full structural adaptation
/// (splits, merges, deactivation stay on: tier clearing on every
/// structural change is part of what these suites exercise).
fn tier_config(mode: TierMode) -> AdaptiveConfig {
    AdaptiveConfig {
        target_zone_rows: 64,
        min_zone_rows: 8,
        max_zone_rows: 512,
        maintenance_every: 1,
        tier_mode: mode,
        tier_after_scans: 1,
        tier_drop_after: 8,
        tier_imprint_line_rows: 8,
        ..AdaptiveConfig::default()
    }
}

/// totalOrder equality — the only equality under which NaN extrema
/// compare equal to themselves.
fn same<T: DataValue>(a: T, b: T) -> bool {
    a.total_cmp(&b) == Ordering::Equal
}

/// Field-wise answer equality that is NaN-safe and bit-exact on sums.
fn assert_answers_identical<T: DataValue>(a: &QueryAnswer<T>, b: &QueryAnswer<T>, ctx: &str) {
    assert_eq!(a.count, b.count, "count {ctx}");
    match (a.sum, b.sum) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            assert_eq!(x.to_bits(), y.to_bits(), "sum bits {ctx}: {x} vs {y}")
        }
        (x, y) => panic!("sum presence {ctx}: {x:?} vs {y:?}"),
    }
    for (got, want, which) in [(a.min, b.min, "min"), (a.max, b.max, "max")] {
        match (got, want) {
            (None, None) => {}
            (Some(x), Some(y)) => assert!(same(x, y), "{which} {ctx}"),
            _ => panic!("{which} presence {ctx}"),
        }
    }
    assert_eq!(a.positions, b.positions, "positions {ctx}");
}

fn gen_i64(rng: &mut StdRng, max_len: usize) -> Vec<i64> {
    let n = rng.gen_range(256..max_len);
    (0..n).map(|_| rng.gen_range(-1000i64..1000)).collect()
}

/// Point-and-range mix so both tier kinds are exercised (and so the
/// Adaptive chooser sees both predicate shapes): half the probes are
/// equality predicates, many on absent values — the case bounds cannot
/// skip but a sketch can.
fn gen_mixed_preds(rng: &mut StdRng, n: usize) -> Vec<RangePredicate<i64>> {
    (0..n)
        .map(|_| {
            if rng.gen_range(0..2u32) == 0 {
                RangePredicate::point(rng.gen_range(-1100i64..1100))
            } else {
                let lo = rng.gen_range(-1200i64..1200);
                RangePredicate::between(lo, lo + rng.gen_range(0i64..400))
            }
        })
        .collect()
}

#[test]
fn tiered_answers_match_untiered_and_reference_on_i64_workloads() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xE21_0001 ^ case);
        let data = gen_i64(&mut rng, 4000);
        let preds = gen_mixed_preds(&mut rng, 24);
        for threads in [1usize, 8] {
            let policy = ExecPolicy {
                threads,
                min_rows_per_thread: 1,
            };
            let mut maps: Vec<AdaptiveZonemap<i64>> = TIER_MODES
                .iter()
                .map(|&m| AdaptiveZonemap::new(data.len(), tier_config(m)))
                .collect();
            for (qi, pred) in preds.iter().enumerate() {
                let agg = ALL_AGGS[qi % ALL_AGGS.len()];
                let want = execute_reference(&data, *pred, agg);
                let mut baseline: Option<QueryAnswer<i64>> = None;
                for (mode, zm) in TIER_MODES.iter().zip(&mut maps) {
                    let (ans, _) = execute_with_policy(&data, zm, *pred, agg, &policy);
                    let ctx = format!("case {case} t={threads} q{qi} {agg:?} {mode:?}");
                    assert_answers_identical(&ans, &want, &ctx);
                    match &baseline {
                        Some(b) => assert_answers_identical(&ans, b, &ctx),
                        None => baseline = Some(ans),
                    }
                }
            }
            // The workload was tier-heavy enough to exercise the layer:
            // every enabled mode must actually have built sketches.
            if threads == 1 && case % 8 == 0 {
                for (mode, zm) in TIER_MODES.iter().zip(&maps).skip(1) {
                    assert!(
                        zm.tier_stats().tiers_built() > 0,
                        "case {case}: {mode:?} never built a tier"
                    );
                }
            }
        }
    }
}

/// Edge values every float path must agree on. `nan_pool` draws data
/// NaNs (one canonical pattern, so whichever one a fold propagates
/// first, the bits agree); the alternative draws both infinities, whose
/// inf + -inf indefinite is likewise a single pattern. The two are never
/// mixed in one column — see the module doc.
fn gen_f64_edgy(rng: &mut StdRng, len: usize, nan_pool: bool) -> Vec<f64> {
    let edges: [f64; 4] = if nan_pool {
        [f64::NAN, 0.0, -0.0, 1.0]
    } else {
        [f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.0]
    };
    (0..len)
        .map(|_| {
            if rng.gen_range(0..4usize) == 0 {
                edges[rng.gen_range(0..edges.len())]
            } else {
                rng.gen_range(-1_000_000i64..1_000_000) as f64 / 64.0
            }
        })
        .collect()
}

#[test]
fn tiered_f64_answers_bit_identical_including_nan_and_signed_zero() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xE21_0002 ^ case);
        let n = rng.gen_range(300..2500usize);
        let nan_pool = case % 2 == 0;
        let data = gen_f64_edgy(&mut rng, n, nan_pool);
        for threads in [1usize, 8] {
            let policy = ExecPolicy {
                threads,
                min_rows_per_thread: 1,
            };
            let mut maps: Vec<AdaptiveZonemap<f64>> = TIER_MODES
                .iter()
                .map(|&m| AdaptiveZonemap::new(data.len(), tier_config(m)))
                .collect();
            for qi in 0..15 {
                // Bounds drawn from the same edgy distribution (ordered
                // under totalOrder, as `between` requires): NaN and
                // infinite bounds are valid equivalence cases, and an
                // occasional coincident pair exercises point sketches.
                let b = gen_f64_edgy(&mut rng, 2, nan_pool);
                let (lo, hi) = if b[0].total_cmp(&b[1]) == Ordering::Greater {
                    (b[1], b[0])
                } else {
                    (b[0], b[1])
                };
                let pred = if qi % 5 == 4 {
                    RangePredicate::point(lo)
                } else {
                    RangePredicate::between(lo, hi)
                };
                let agg = ALL_AGGS[qi % ALL_AGGS.len()];
                let want = execute_reference(&data, pred, agg);
                let mut baseline: Option<QueryAnswer<f64>> = None;
                for (mode, zm) in TIER_MODES.iter().zip(&mut maps) {
                    let (ans, _) = execute_with_policy(&data, zm, pred, agg, &policy);
                    let ctx = format!("f64 case {case} t={threads} q{qi} {agg:?} {mode:?}");
                    assert_answers_identical(&ans, &want, &ctx);
                    match &baseline {
                        Some(b) => assert_answers_identical(&ans, b, &ctx),
                        None => baseline = Some(ans),
                    }
                }
            }
        }
    }
}

#[test]
fn tiered_sharded_answers_match_at_any_shard_count() {
    for case in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(0xE21_0003 ^ case);
        let data = gen_i64(&mut rng, 5000);
        let preds = gen_mixed_preds(&mut rng, 16);
        for shards in [1usize, 8] {
            for threads in [1usize, 8] {
                let policy = ExecPolicy {
                    threads,
                    min_rows_per_thread: 1,
                };
                let column = ShardedColumn::new(data.clone(), shards);
                let mut maps: Vec<ShardedZonemap<i64>> = TIER_MODES
                    .iter()
                    .map(|&m| ShardedZonemap::for_column(&column, tier_config(m)))
                    .collect();
                for (qi, pred) in preds.iter().enumerate() {
                    let agg = ALL_AGGS[qi % ALL_AGGS.len()];
                    let want = execute_reference(&data, *pred, agg);
                    let mut baseline: Option<QueryAnswer<i64>> = None;
                    for (mode, zm) in TIER_MODES.iter().zip(&mut maps) {
                        let (ans, _) = execute_sharded(&column, zm, *pred, agg, &policy);
                        let ctx =
                            format!("case {case} s={shards} t={threads} q{qi} {agg:?} {mode:?}");
                        assert_answers_identical(&ans, &want, &ctx);
                        match &baseline {
                            Some(b) => assert_answers_identical(&ans, b, &ctx),
                            None => baseline = Some(ans),
                        }
                    }
                }
            }
        }
    }
}

// --------------------------------------------- churn: never a false negative

const DOMAIN: i64 = 10_000;

/// The naive mirror of the service's out-of-place mutation semantics
/// (same shape as the mutation suite's model).
struct Model {
    rows: Vec<i64>,
    dead: Vec<bool>,
    dead_count: usize,
}

impl Model {
    fn new(data: &[i64]) -> Self {
        Model {
            rows: data.to_vec(),
            dead: vec![false; data.len()],
            dead_count: 0,
        }
    }

    fn apply(&mut self, m: Mutation<i64>) -> bool {
        match m {
            Mutation::Delete(row) => {
                if self.dead[row] {
                    return false;
                }
                self.dead[row] = true;
                self.dead_count += 1;
                true
            }
            Mutation::Update(row, v) => {
                if self.dead[row] {
                    return false;
                }
                self.dead[row] = true;
                self.dead_count += 1;
                self.rows.push(v);
                self.dead.push(false);
                true
            }
        }
    }

    fn append(&mut self, vals: &[i64]) {
        self.rows.extend_from_slice(vals);
        self.dead.resize(self.rows.len(), false);
    }

    fn compact(&mut self) {
        self.rows = self
            .rows
            .iter()
            .zip(&self.dead)
            .filter(|&(_, &d)| !d)
            .map(|(&v, _)| v)
            .collect();
        self.dead = vec![false; self.rows.len()];
        self.dead_count = 0;
    }

    /// Live qualifying rows of `[lo, hi]` in rowid order.
    fn matches(&self, lo: i64, hi: i64) -> Vec<(usize, i64)> {
        self.rows
            .iter()
            .enumerate()
            .filter(|&(i, &v)| !self.dead[i] && v >= lo && v <= hi)
            .map(|(i, &v)| (i, v))
            .collect()
    }
}

/// Asks the service one aggregate and asserts it bit-identical to the
/// naive recompute — a tier that over-skipped (false negative) fails
/// here as a lost row. Returns a fold for cross-mode comparison.
fn verify(
    svc: &QueryService<i64>,
    model: &Model,
    lo: i64,
    hi: i64,
    agg: AggKind,
    ctx: &str,
) -> u64 {
    let rows = model.matches(lo, hi);
    let reply = svc
        .query(RangePredicate::between(lo, hi), agg)
        .expect("closed loop");
    let ans = reply.answer().expect("no deadline set");
    assert_eq!(ans.count, rows.len() as u64, "{ctx}: COUNT [{lo},{hi}]");
    let mut fold = ans.count;
    match agg {
        AggKind::Count => {}
        AggKind::Sum => {
            // Exact integer partials far below 2^53: bit-compare is
            // fair. Explicit +0.0 fold identity: `Iterator::sum` seeds
            // with -0.0, but the scan kernels (and an empty result set)
            // answer +0.0.
            let want: f64 = rows.iter().map(|&(_, v)| v as f64).fold(0.0, |a, b| a + b);
            let got = ans.sum.expect("sum aggregate carries a sum");
            assert_eq!(got.to_bits(), want.to_bits(), "{ctx}: SUM [{lo},{hi}]");
            fold = fold.wrapping_add(got.to_bits());
        }
        AggKind::Min => {
            let want = rows.iter().map(|&(_, v)| v).min();
            assert_eq!(ans.min, want, "{ctx}: MIN [{lo},{hi}]");
            fold = fold.wrapping_add(want.unwrap_or(-1) as u64);
        }
        AggKind::Max => {
            let want = rows.iter().map(|&(_, v)| v).max();
            assert_eq!(ans.max, want, "{ctx}: MAX [{lo},{hi}]");
            fold = fold.wrapping_add(want.unwrap_or(-1) as u64);
        }
        AggKind::Positions => {
            let want: Vec<u32> = rows.iter().map(|&(i, _)| i as u32).collect();
            let got = ans.positions.as_ref().expect("positions carried");
            assert_eq!(got, &want, "{ctx}: POSITIONS [{lo},{hi}]");
            fold = want
                .iter()
                .fold(fold, |f, &p| f.rotate_left(1).wrapping_add(p as u64));
        }
    }
    fold
}

/// One randomized interleaving of queries, point probes, delete/update
/// batches, appends, and a compaction epilogue against a tier-enabled
/// service. Returns the answer checksum.
fn run_churn(seed: u64, mode: TierMode, adaptation: AdaptationMode) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(3));
    let base: Vec<i64> = (0..1_200).map(|_| rng.gen_range(0..DOMAIN)).collect();
    let svc = QueryService::start(
        base.clone(),
        ServerConfig {
            readers: 1,
            shards: 8,
            adaptation,
            adaptive: tier_config(mode),
            compact_tombstone_ratio: None,
            ..ServerConfig::default()
        },
    );
    let mut model = Model::new(&base);
    let ctx = format!("seed {seed} {mode:?} {}", adaptation.label());
    let mut checksum = 0u64;

    for step in 0..70 {
        match rng.gen_range(0..10u32) {
            0..=4 => {
                // Range and point probes; points on possibly-absent
                // values are the bloom tier's skip case, so deletes and
                // appends must keep the sketches conservative.
                let lo = rng.gen_range(0..DOMAIN);
                let hi = if rng.gen_range(0..3u32) == 0 {
                    lo
                } else {
                    (lo + rng.gen_range(0..DOMAIN / 4)).min(DOMAIN - 1)
                };
                let agg = ALL_AGGS[rng.gen_range(0..ALL_AGGS.len())];
                checksum = checksum
                    .rotate_left(9)
                    .wrapping_add(verify(&svc, &model, lo, hi, agg, &ctx));
            }
            5 | 6 => {
                let batch: Vec<Mutation<i64>> = (0..rng.gen_range(1..5usize))
                    .map(|_| {
                        let row = rng.gen_range(0..model.rows.len());
                        if rng.gen_range(0..2u32) == 0 {
                            Mutation::Delete(row)
                        } else {
                            Mutation::Update(row, rng.gen_range(0..DOMAIN))
                        }
                    })
                    .collect();
                let want: usize = batch.iter().map(|&m| usize::from(model.apply(m))).sum();
                let applied = svc.mutate(batch).expect("maintenance thread lives");
                assert_eq!(applied, want, "{ctx}: applied count at step {step}");
            }
            7 | 8 => {
                let rows: Vec<i64> = (0..rng.gen_range(1..20usize))
                    .map(|_| rng.gen_range(0..DOMAIN))
                    .collect();
                model.append(&rows);
                svc.append(rows);
            }
            _ => svc.flush(),
        }
    }

    // Compaction epilogue: tiers were built over the pre-compaction row
    // layout; compaction rebuilds zones, so stale sketches must be gone
    // and answers unchanged.
    let reclaimed = svc.compact().expect("maintenance thread lives");
    assert_eq!(reclaimed, model.dead_count, "{ctx}: rows reclaimed");
    model.compact();
    for _ in 0..8 {
        let lo = rng.gen_range(0..DOMAIN);
        let hi = (lo + DOMAIN / 5).min(DOMAIN - 1);
        for agg in ALL_AGGS {
            checksum = checksum
                .rotate_left(9)
                .wrapping_add(verify(&svc, &model, lo, hi, agg, &ctx));
        }
    }
    svc.shutdown();
    checksum
}

/// The tier lifecycle never produces a false negative under mutation
/// churn, and the answer stream is identical whatever tier mode (or
/// adaptation mode) runs underneath.
#[test]
fn tier_lifecycle_never_false_negative_under_churn() {
    for seed in 0..3u64 {
        let mut reference: Option<u64> = None;
        for adaptation in [AdaptationMode::Async, AdaptationMode::Inline] {
            for mode in TIER_MODES {
                let sum = run_churn(seed, mode, adaptation);
                match reference {
                    Some(want) => assert_eq!(
                        sum,
                        want,
                        "seed {seed}: answers diverged under {mode:?} {}",
                        adaptation.label()
                    ),
                    None => reference = Some(sum),
                }
            }
        }
    }
}

//! End-to-end shadow-oracle tests (run with `--features audit`).
//!
//! The auditor's value is negative evidence: an index that lies about
//! its coverage must crash the executor, not return a silently wrong
//! answer. These tests drive the real engine entry points — the same
//! hook every suite exercises when the feature is on — against both an
//! adversarial index and honest strategies under deletes.

#![cfg(feature = "audit")]

use ads_core::{PruneOutcome, RangePredicate, SkippingIndex};
use ads_engine::{execute, scan_pruned_with_deletes, AggKind, ExecPolicy, Strategy};
use ads_storage::{DeleteVector, RangeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// An index that silently drops the upper half of the column from its
/// candidates — the exact bug class the oracle exists to catch.
struct EvilIndex {
    rows: usize,
}

impl SkippingIndex<i64> for EvilIndex {
    fn name(&self) -> String {
        "evil".into()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn prune(&mut self, _pred: &RangePredicate<i64>) -> PruneOutcome {
        let mut out = PruneOutcome::default();
        out.must_scan.push_span(0, self.rows / 2);
        out.record_decision(ads_storage::RowRange::new(0, self.rows / 2), "scan");
        out.record_decision(
            ads_storage::RowRange::new(self.rows / 2, self.rows),
            "skip:bounds",
        );
        out
    }

    fn on_append(&mut self, _appended: &[i64], base: &[i64]) {
        self.rows = base.len();
    }

    fn metadata_bytes(&self) -> usize {
        0
    }
}

#[test]
fn executor_aborts_on_lying_index() {
    let data: Vec<i64> = (0..1000).collect();
    let mut idx = EvilIndex { rows: data.len() };
    // Qualifying rows live in the dropped half.
    let err = catch_unwind(AssertUnwindSafe(|| {
        execute(
            &data,
            &mut idx,
            RangePredicate::between(900, 950),
            AggKind::Count,
        )
    }))
    .expect_err("executor must abort on a false skip");
    let msg = err
        .downcast_ref::<String>()
        .expect("panic carries a message");
    assert!(msg.contains("FALSE SKIP"), "unexpected abort: {msg}");
    assert!(
        msg.contains("scan_pruned"),
        "hook must name its site: {msg}"
    );
    assert!(
        msg.contains("skip:bounds"),
        "abort must surface the decision trace: {msg}"
    );
}

#[test]
fn executor_accepts_lying_index_when_predicate_misses_the_gap() {
    let data: Vec<i64> = (0..1000).collect();
    let mut idx = EvilIndex { rows: data.len() };
    // All qualifying rows sit in the half the index does admit, so the
    // (still unsound in general) outcome happens to be sound here.
    let (answer, _) = execute(
        &data,
        &mut idx,
        RangePredicate::between(100, 150),
        AggKind::Count,
    );
    assert_eq!(answer.count, 51);
}

#[test]
fn honest_strategies_sweep_clean_under_deletes() {
    let data: Vec<i64> = (0..20_000).map(|i| (i * 37) % 5000).collect();
    let mut live = DeleteVector::new(data.len(), 0);
    for row in (0..data.len()).step_by(13) {
        live.delete(row);
    }
    let policy = ExecPolicy::default();
    for strategy in [
        Strategy::StaticZonemap { zone_rows: 512 },
        Strategy::Adaptive(Default::default()),
        Strategy::Imprints {
            values_per_line: 8,
            bins: 64,
        },
    ] {
        let mut idx = strategy.build_index(&data);
        for q in 0..40i64 {
            let pred = RangePredicate::between(q * 100, q * 100 + 250);
            let out = idx.prune(&pred);
            // The audit hook inside the scan cross-checks every decision.
            let (_, obs, _) =
                scan_pruned_with_deletes(&data, &out, pred, AggKind::Count, &policy, Some(&live));
            idx.observe(&obs);
            idx.maintain(&data);
        }
    }
}

#[test]
fn conjunction_path_audits_each_conjunct() {
    use ads_engine::{AnyPredicate, TableSession};
    use ads_storage::{Column, Table};

    let mut table = Table::new("t");
    let a: Vec<i64> = (0..10_000).collect();
    let b: Vec<i64> = (0..10_000).map(|i| (i * 7) % 1000).collect();
    table.add_column("a", Column::from_values(a)).unwrap();
    table.add_column("b", Column::from_values(b)).unwrap();
    let mut session =
        TableSession::new(table, &Strategy::Adaptive(Default::default()), &["a", "b"]).unwrap();
    // Restricted probes hand the auditor a non-trivial `within` set; a
    // pass here means no conjunct's outcome dropped surviving candidates.
    for q in 0..25i64 {
        let (count, _) = session
            .count_conjunction(&[
                (
                    "a",
                    AnyPredicate::I64(RangePredicate::between(q * 50, q * 50 + 2000)),
                ),
                ("b", AnyPredicate::I64(RangePredicate::between(0, 400))),
            ])
            .unwrap();
        let expected = (q * 50..=q * 50 + 2000)
            .filter(|&i| i < 10_000 && (i * 7) % 1000 <= 400)
            .count() as u64;
        assert_eq!(count, expected, "query {q}");
    }
}

/// The sound-skip direction: deleted rows are fair game to exclude, and
/// the oracle must not flag them.
#[test]
fn oracle_tolerates_skipping_tombstoned_rows() {
    let data: Vec<i64> = (0..1000).collect();
    let mut live = DeleteVector::new(data.len(), 0);
    for row in 500..1000 {
        live.delete(row);
    }
    let out = PruneOutcome {
        must_scan: RangeSet::full(500),
        ..Default::default()
    };
    let pred = RangePredicate::between(600, 700);
    let policy = ExecPolicy::default();
    let (answer, _, _) =
        scan_pruned_with_deletes(&data, &out, pred, AggKind::Count, &policy, Some(&live));
    assert_eq!(answer.count, 0);
}
